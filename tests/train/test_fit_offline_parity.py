"""End-to-end parity of the pooled batched offline phase.

``LTE.fit_offline(engine="batched")`` interleaves and fuses the
meta-training of all subspaces; it must produce bit-identical trainers —
and therefore bit-identical online sessions and F1 scores — to the
sequential reference engine, for every variant.
"""

import numpy as np
import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_car

pytestmark = pytest.mark.train


def small_config():
    return LTEConfig(budget=20, ku=20, kq=25, n_tasks=5,
                     meta=MetaHyperParams(epochs=2, local_steps=2,
                                          batch_size=3, pretrain_epochs=1),
                     basic_steps=10, online_steps=3)


@pytest.fixture(scope="module")
def offline_pair():
    table = make_car(n_rows=1500, seed=41)
    sequential = LTE(small_config()).fit_offline(table, engine="sequential")
    batched = LTE(small_config()).fit_offline(table, engine="batched")
    return table, sequential, batched


def test_trainers_bit_identical(offline_pair):
    _, sequential, batched = offline_pair
    assert list(sequential.states) == list(batched.states)
    for subspace in sequential.states:
        a = sequential.states[subspace].trainer
        b = batched.states[subspace].trainer
        assert np.array_equal(a.model.flat_parameters(),
                              b.model.flat_parameters()), subspace
        assert a.history == b.history
        if a.memories is not None:
            sa, sb = a.memories.state_dict(), b.memories.state_dict()
            for key in ("M_vR", "M_R", "M_CP"):
                assert np.array_equal(sa[key], sb[key])


@pytest.mark.parametrize("variant", ["basic", "meta", "meta_star"])
def test_session_f1_parity(offline_pair, variant):
    from repro.bench import subspace_region
    from repro.explore import ConjunctiveOracle, run_lte_exploration

    table, sequential, batched = offline_pair
    subspaces = list(sequential.states)[:2]
    eval_rows = table.sample_rows(250, seed=5)
    results = []
    for lte in (sequential, batched):
        oracle = ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(1, 8), seed=17 + i)
            for i, s in enumerate(subspaces)})
        results.append(run_lte_exploration(lte, oracle, eval_rows,
                                           variant=variant,
                                           subspaces=subspaces))
    assert results[0].f1 == results[1].f1
    assert np.array_equal(results[0].predictions, results[1].predictions)


def test_progress_reports_per_epoch_losses(offline_pair):
    table, _, batched = offline_pair
    events = []
    lte = LTE(small_config())
    lte.fit_offline(table, progress=lambda s, stage: events.append((s, stage)))
    prepared = [s for s, stage in events if stage == "prepared"]
    trained = [s for s, stage in events if stage == "trained"]
    assert prepared == list(lte.states)
    assert sorted(trained, key=str) == sorted(lte.states, key=str)
    epochs = [(s, stage) for s, stage in events
              if isinstance(stage, tuple) and stage[0] == "epoch"]
    # every subspace reports every meta epoch, and the reported mean
    # query losses equal the trainer history
    n_epochs = small_config().meta.epochs
    assert len(epochs) == n_epochs * len(lte.states)
    for subspace in lte.states:
        losses = [stage[2] for s, stage in epochs if s is subspace]
        assert losses == lte.states[subspace].trainer.history
