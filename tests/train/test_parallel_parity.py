"""Parallel-vs-fused bit-identity of the data-parallel training engine.

``ParallelTrainEngine`` partitions fused meta-batches and pretrain
fusion groups across forked worker processes; its determinism contract
(see the :mod:`repro.train.parallel` docstring) says phi, memories,
pretrain-Adam moments and loss histories are **bit-identical to the
single-process fused engine at any worker count** — and therefore so is
every downstream online session.  These tests pin that contract at
workers=1/2/4, fuzz it over the axes that change the stacked program,
prove progress-event order is master-side deterministic under shuffled
worker reply timing, and exercise the typed crash and telemetry paths.
"""

import os
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams, MetaTrainer
from repro.train import (OfflineRun, ParallelTrainEngine, TrainerSchedule,
                         TrainWorkerCrashed, encode_task_sets,
                         resolve_workers)

pytestmark = [pytest.mark.train, pytest.mark.train_parallel]


def small_config():
    return LTEConfig(budget=20, ku=20, kq=25, n_tasks=5,
                     meta=MetaHyperParams(epochs=2, local_steps=2,
                                          batch_size=3, pretrain_epochs=1),
                     basic_steps=10, online_steps=3)


def build_trainer(task_generator, preprocessor, use_memories=True, seed=0,
                  **overrides):
    params = dict(epochs=2, local_steps=3, batch_size=4, pretrain_epochs=1,
                  rho=0.02, lam=1e-3)
    params.update(overrides)
    return MetaTrainer(ku=task_generator.summary.ku,
                       input_width=preprocessor.width,
                       embed_size=12, hidden_size=8,
                       params=MetaHyperParams(**params),
                       use_memories=use_memories, seed=seed)


def assert_trainers_identical(a, b):
    assert np.array_equal(a.model.flat_parameters(),
                          b.model.flat_parameters())
    assert a.history == b.history
    if a.memories is not None:
        sa, sb = a.memories.state_dict(), b.memories.state_dict()
        for key in ("M_vR", "M_R", "M_CP"):
            assert np.array_equal(sa[key], sb[key]), key


def train_parallel(trainer, encoded, workers):
    """One full offline run of ``trainer`` under the parallel engine."""
    run = OfflineRun([TrainerSchedule(trainer, encoded)],
                     engine="parallel", workers=workers)
    try:
        run.run()
    finally:
        run.close()
    return trainer


# ----------------------------------------------------------------------
# End-to-end fit_offline parity (phi + memories + history + sessions)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def parallel_pair(car_small):
    table = car_small
    batched = LTE(small_config()).fit_offline(table, engine="batched")
    parallel = LTE(small_config()).fit_offline(table, engine="parallel",
                                               workers=2)
    return table, batched, parallel


@pytest.mark.parametrize("workers", [1, 4])
def test_fit_offline_bit_identical_any_worker_count(parallel_pair, workers):
    table, batched, _ = parallel_pair
    parallel = LTE(small_config()).fit_offline(table, engine="parallel",
                                               workers=workers)
    for subspace in batched.states:
        a = batched.states[subspace].trainer
        b = parallel.states[subspace].trainer
        assert_trainers_identical(a, b)


def test_fit_offline_bit_identical_two_workers(parallel_pair):
    _, batched, parallel = parallel_pair
    assert list(batched.states) == list(parallel.states)
    for subspace in batched.states:
        assert_trainers_identical(batched.states[subspace].trainer,
                                  parallel.states[subspace].trainer)


@pytest.mark.parametrize("variant", ["basic", "meta", "meta_star"])
def test_downstream_sessions_identical(parallel_pair, variant):
    from repro.bench import subspace_region
    from repro.core.uis import UISMode
    from repro.explore import ConjunctiveOracle, run_lte_exploration

    table, batched, parallel = parallel_pair
    subspaces = list(batched.states)[:2]
    eval_rows = table.sample_rows(250, seed=5)
    results = []
    for lte in (batched, parallel):
        oracle = ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(1, 8), seed=23 + i)
            for i, s in enumerate(subspaces)})
        results.append(run_lte_exploration(lte, oracle, eval_rows,
                                           variant=variant,
                                           subspaces=subspaces))
    assert results[0].f1 == results[1].f1
    assert np.array_equal(results[0].predictions, results[1].predictions)


# ----------------------------------------------------------------------
# Fuzzed engine-level parity (single-trainer schedules)
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10 ** 6),
       st.integers(1, 9),           # n_tasks
       st.integers(1, 5),           # batch_size (often uneven tails)
       st.sampled_from(["adam", "sgd"]),
       st.booleans(),               # use_memories
       st.booleans(),               # balance_classes
       st.integers(0, 1),           # pretrain_epochs
       st.sampled_from([2, 3]))     # workers
def test_parallel_parity_property(task_generator, preprocessor, meta_tasks,
                                  seed, n_tasks, batch_size, optimizer,
                                  use_memories, balance, pretrain, workers):
    tasks = meta_tasks[:n_tasks]
    kwargs = dict(use_memories=use_memories, seed=seed,
                  local_optimizer=optimizer, balance_classes=balance,
                  batch_size=batch_size, pretrain_epochs=pretrain,
                  epochs=1, local_steps=2)
    reference = build_trainer(task_generator, preprocessor, **kwargs)
    reference.train(tasks, preprocessor.transform, engine="batched")
    candidate = build_trainer(task_generator, preprocessor, **kwargs)
    train_parallel(candidate,
                   encode_task_sets(tasks, preprocessor.transform),
                   workers)
    assert_trainers_identical(reference, candidate)


# ----------------------------------------------------------------------
# Deterministic event order under shuffled worker reply timing
# ----------------------------------------------------------------------
def test_progress_events_deterministic_under_reply_shuffle(
        task_generator, preprocessor, meta_tasks):
    """Per-worker reply delays cannot reorder progress events: the
    master collects spans in fixed order and emits after its ordered
    reduction, so the event log is byte-identical with and without a
    deliberately skewed reply schedule."""
    logs = []
    for stagger in (False, True):
        events = []
        # Two same-shape schedules fuse into one group, so every epoch
        # spans both workers.
        schedules = [
            TrainerSchedule(
                build_trainer(task_generator, preprocessor, seed=seed),
                encode_task_sets(meta_tasks[:6], preprocessor.transform))
            for seed in (0, 1)]
        run = OfflineRun(
            schedules, engine="parallel", workers=2,
            on_epoch=lambda s, kind, e, loss:
                events.append((schedules.index(s), kind, e, loss)))
        try:
            engine = run.parallel
            if stagger:
                # Slow the FIRST-posted worker only: later spans reply
                # first, exercising the wait-in-order path for real.
                engine._rpc.call(engine._workers[0], "_debug",
                                 {"delay_seconds": 0.05})
            run.run()
        finally:
            run.close()
        logs.append(events)
    assert logs[0] == logs[1]
    assert any(kind == "meta" for _, kind, _, _ in logs[0])


# ----------------------------------------------------------------------
# Typed crash detection
# ----------------------------------------------------------------------
def test_worker_crash_raises_typed_error(task_generator, preprocessor,
                                         meta_tasks):
    trainer = build_trainer(task_generator, preprocessor,
                            pretrain_epochs=0, epochs=1)
    encoded = encode_task_sets(meta_tasks[:6], preprocessor.transform)
    schedule = TrainerSchedule(trainer, encoded)
    with ParallelTrainEngine([schedule], workers=2) as engine:
        engine.debug(crash_on_compute=True)
        run = OfflineRun([schedule], engine="parallel")
        run._parallel = engine
        with pytest.raises(TrainWorkerCrashed):
            run.step_epoch()
        # telemetry after the crash: tombstones, never an exception
        report = engine.metrics()
        assert all(entry == {"dead": True}
                   for entry in report["workers"].values())
        snap = engine.master_metrics.snapshot()
        assert snap["train.parallel.workers.crashed"]["value"] >= 1
        assert snap["train.parallel.workers.alive"]["value"] == 0


def test_crashed_engine_state_resumes_cleanly(task_generator, preprocessor,
                                              meta_tasks):
    """After a crash mid-epoch the master state is untouched (no partial
    reduction leaked), so re-running on a fresh pool converges to the
    single-process result."""
    tasks = meta_tasks[:6]
    reference = build_trainer(task_generator, preprocessor)
    reference.train(tasks, preprocessor.transform, engine="batched")

    trainer = build_trainer(task_generator, preprocessor)
    encoded = encode_task_sets(tasks, preprocessor.transform)
    schedule = TrainerSchedule(trainer, encoded)
    with ParallelTrainEngine([schedule], workers=2) as engine:
        engine.debug(crash_on_compute=True)
        run = OfflineRun([schedule], engine="parallel")
        run._parallel = engine
        with pytest.raises(TrainWorkerCrashed):
            while not run.done:
                run.step_epoch()
    # The crashed meta epoch applied nothing (state updates happen only
    # after all spans returned); a fresh pool over a fresh trainer still
    # converges to the single-process result.
    fresh = build_trainer(task_generator, preprocessor)
    train_parallel(fresh, encode_task_sets(tasks, preprocessor.transform),
                   2)
    assert_trainers_identical(reference, fresh)


# ----------------------------------------------------------------------
# Telemetry: per-worker registries merged on the master
# ----------------------------------------------------------------------
def test_metrics_merge_across_workers(task_generator, preprocessor,
                                      meta_tasks):
    trainer = build_trainer(task_generator, preprocessor, epochs=1)
    encoded = encode_task_sets(meta_tasks[:8], preprocessor.transform)
    schedule = TrainerSchedule(trainer, encoded)
    run = OfflineRun([schedule], engine="parallel", workers=2)
    try:
        run.run()
        report = run.parallel.metrics()
    finally:
        run.close()
    assert set(report) == {"workers", "master", "merged"}
    assert sorted(report["workers"]) == [0, 1]

    def value(snap, name):
        entry = snap.get(name)
        return 0 if entry is None else entry["value"]

    per_worker = [value(snap, "train.worker.batches")
                  for snap in report["workers"].values()]
    assert sum(per_worker) >= 1
    merged = report["merged"]
    assert value(merged, "train.worker.batches") == sum(per_worker)
    assert value(merged, "train.parallel.rpc.calls") \
        == value(report["master"], "train.parallel.rpc.calls") > 0
    # gauges returned to idle after the run
    assert value(report["master"], "train.worker.busy") == 0
    assert "train.reduce.latency" in report["master"]
    assert report["master"]["train.reduce.seconds"]["count"] >= 1
    assert value(merged, "train.parallel.workers.alive") == 2


# ----------------------------------------------------------------------
# Store-streamed encoded task sets
# ----------------------------------------------------------------------
def test_streamed_tasks_bit_equal_materialized(task_generator, preprocessor,
                                               meta_tasks, tmp_path):
    tasks = meta_tasks[:7]
    materialized = encode_task_sets(tasks, preprocessor.transform)
    streamed = encode_task_sets(tasks, preprocessor.transform,
                                spill=str(tmp_path / "enc"))
    assert len(streamed) == len(materialized)
    assert streamed.shape_signature == (materialized[0][1].shape,
                                        materialized[0][3].shape)
    for row_a, row_b in zip(materialized, streamed):
        for part_a, part_b in zip(row_a, row_b):
            assert np.array_equal(np.asarray(part_a, dtype=np.float64),
                                  part_b)
    view = streamed.pretrain_view()
    assert len(view) == len(tasks)
    v_r, xs, ys = view[0]
    assert xs.shape[0] == materialized[0][1].shape[0] \
        + materialized[0][3].shape[0]
    assert ys.dtype == np.float64


def test_streamed_training_parity(task_generator, preprocessor, meta_tasks,
                                  tmp_path):
    tasks = meta_tasks[:6]
    reference = build_trainer(task_generator, preprocessor)
    reference.train(tasks, preprocessor.transform, engine="batched")
    for workers in (None, 2):   # None = in-process batched over the store
        trainer = build_trainer(task_generator, preprocessor)
        encoded = encode_task_sets(
            tasks, preprocessor.transform,
            spill=str(tmp_path / "spill-{}".format(workers)))
        if workers is None:
            run = OfflineRun([TrainerSchedule(trainer, encoded)],
                             engine="batched")
            run.run()
        else:
            train_parallel(trainer, encoded, workers)
        assert_trainers_identical(reference, trainer)


class _SyntheticTask:
    """Minimal task shim for the memory-bound test: big uniform blocks."""

    def __init__(self, rng, ku, kq, width):
        self.support_x = rng.standard_normal((ku, width))
        self.query_x = rng.standard_normal((kq, width))
        self.support_y = (rng.random(ku) > 0.5).astype(np.float64)
        self.query_y = (rng.random(kq) > 0.5).astype(np.float64)
        self.feature_vector = rng.standard_normal(8)


def test_streamed_spill_bounds_peak_memory(tmp_path):
    """Spilling a task set much larger than one store chunk keeps peak
    allocation bounded by the encode block / chunk size, not the total
    encoded volume (the whole point of the streamed path)."""
    rng = np.random.default_rng(0)
    tasks = [_SyntheticTask(rng, ku=50, kq=75, width=200)
             for _ in range(384)]
    row_bytes = 8 * (8 + 50 * 200 + 50 + 75 * 200 + 75)
    # ~77 MB materialized vs an O(chunk-size) streaming footprint (the
    # builder holds a small constant number of ~4 MiB chunk buffers).
    total_bytes = row_bytes * len(tasks)

    tracemalloc.start()
    encoded = encode_task_sets(tasks, lambda block: np.asarray(block),
                               rows_per_block=256,
                               spill=str(tmp_path / "big"))
    _, peak_write = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert encoded.store.n_chunks > 1   # genuinely multi-chunk
    assert peak_write < total_bytes / 2, \
        "spill peak {} vs materialized {}".format(peak_write, total_bytes)

    tracemalloc.start()
    checksum = 0.0
    for v_r, sx, sy, qx, qy in encoded:
        checksum += float(sx[0, 0]) + float(qx[0, 0])
    _, peak_read = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert np.isfinite(checksum)
    assert peak_read < total_bytes / 2, \
        "read peak {} vs materialized {}".format(peak_read, total_bytes)


def test_spill_falls_back_for_nonuniform_shapes(tmp_path):
    rng = np.random.default_rng(1)
    tasks = [_SyntheticTask(rng, ku=10, kq=12, width=6),
             _SyntheticTask(rng, ku=11, kq=12, width=6)]
    encoded = encode_task_sets(tasks, lambda block: np.asarray(block),
                               spill=str(tmp_path / "mixed"))
    assert isinstance(encoded, list)   # materialized fallback
    assert len(encoded) == 2


# ----------------------------------------------------------------------
# Worker-count resolution / configuration plumbing
# ----------------------------------------------------------------------
def test_resolve_workers(monkeypatch):
    monkeypatch.delenv("REPRO_TRAIN_WORKERS", raising=False)
    assert resolve_workers(3) == 3
    assert resolve_workers() == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_TRAIN_WORKERS", "5")
    assert resolve_workers() == 5
    assert resolve_workers(2) == 2
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_env_var_switches_engine_and_matches(car_small, monkeypatch):
    batched = LTE(small_config()).fit_offline(car_small, engine="batched")
    monkeypatch.setenv("REPRO_TRAIN_WORKERS", "2")
    switched = LTE(small_config()).fit_offline(car_small)
    for subspace in batched.states:
        assert_trainers_identical(batched.states[subspace].trainer,
                                  switched.states[subspace].trainer)


def test_engine_rejects_use_after_close(task_generator, preprocessor,
                                        meta_tasks):
    from repro.train import TrainParallelError

    trainer = build_trainer(task_generator, preprocessor)
    encoded = encode_task_sets(meta_tasks[:4], preprocessor.transform)
    schedule = TrainerSchedule(trainer, encoded)
    engine = ParallelTrainEngine([schedule], workers=1)
    engine.close()
    engine.close()   # idempotent
    with pytest.raises(TrainParallelError):
        engine.pretrain_epoch([schedule])
