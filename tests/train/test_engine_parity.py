"""Batched-vs-sequential parity of the offline meta-training engine.

The fused executors in ``repro.train.engine`` must be **bit-identical**
to the sequential reference (``MetaTrainer.train_batch_sequential`` /
per-task ``adapt``): same phi, same memories, same per-epoch history,
same evaluation scores.  Fuzzed over the axes that change the stacked
program's shape and math: memories on/off, Adam vs SGD local steps,
class balancing, uneven final batches, single-task batches, pretraining
on/off.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.meta_training import MetaHyperParams, MetaTrainer
from repro.train import (OfflineRun, TrainerSchedule, encode_task_sets,
                         run_pretrain_epoch_pooled,
                         run_pretrain_epoch_sequential)

pytestmark = pytest.mark.train


def build_trainer(task_generator, preprocessor, use_memories=True, seed=0,
                  **overrides):
    params = dict(epochs=2, local_steps=3, batch_size=4, pretrain_epochs=1,
                  rho=0.02, lam=1e-3)
    params.update(overrides)
    return MetaTrainer(ku=task_generator.summary.ku,
                       input_width=preprocessor.width,
                       embed_size=12, hidden_size=8,
                       params=MetaHyperParams(**params),
                       use_memories=use_memories, seed=seed)


def assert_trainers_identical(a, b):
    assert np.array_equal(a.model.flat_parameters(),
                          b.model.flat_parameters())
    assert a.history == b.history
    if a.memories is not None:
        sa, sb = a.memories.state_dict(), b.memories.state_dict()
        for key in ("M_vR", "M_R", "M_CP"):
            assert np.array_equal(sa[key], sb[key]), key


# Fuzz axes: (use_memories, local_optimizer, balance, batch_size,
#             n_tasks, pretrain_epochs, epochs) — n_tasks=7/batch=3 and
# n_tasks=5/batch=4 exercise uneven final batches, batch_size=1 the
# single-task fused path, n_tasks=1 the lone-batch path.
FUZZ_CASES = [
    (True, "adam", True, 4, 12, 1, 2),
    (True, "adam", True, 3, 7, 0, 2),
    (True, "sgd", True, 4, 5, 1, 1),
    (True, "sgd", False, 5, 9, 0, 2),
    (False, "adam", True, 3, 7, 1, 2),
    (False, "sgd", True, 4, 6, 0, 1),
    (True, "adam", False, 1, 4, 0, 1),
    (True, "adam", True, 10, 6, 1, 1),
    (False, "adam", True, 2, 1, 1, 2),
]


@pytest.mark.parametrize(
    "use_memories,optimizer,balance,batch_size,n_tasks,pretrain,epochs",
    FUZZ_CASES)
def test_train_parity_fuzz(task_generator, preprocessor, meta_tasks,
                           use_memories, optimizer, balance, batch_size,
                           n_tasks, pretrain, epochs):
    tasks = meta_tasks[:n_tasks]
    results = []
    for engine in ("sequential", "batched"):
        trainer = build_trainer(
            task_generator, preprocessor, use_memories=use_memories,
            local_optimizer=optimizer, balance_classes=balance,
            batch_size=batch_size, pretrain_epochs=pretrain, epochs=epochs)
        trainer.train(tasks, preprocessor.transform, engine=engine)
        results.append(trainer)
    assert_trainers_identical(*results)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10 ** 6),
       st.integers(1, 12),          # n_tasks
       st.integers(1, 6),           # batch_size (often uneven tails)
       st.sampled_from(["adam", "sgd"]),
       st.booleans(),               # use_memories
       st.booleans(),               # balance_classes
       st.integers(0, 1))           # pretrain_epochs
def test_train_parity_property(task_generator, preprocessor, meta_tasks,
                               seed, n_tasks, batch_size, optimizer,
                               use_memories, balance, pretrain):
    tasks = meta_tasks[:n_tasks]
    results = []
    for engine in ("sequential", "batched"):
        trainer = build_trainer(
            task_generator, preprocessor, use_memories=use_memories,
            seed=seed, local_optimizer=optimizer, balance_classes=balance,
            batch_size=batch_size, pretrain_epochs=pretrain, epochs=1,
            local_steps=2)
        trainer.train(tasks, preprocessor.transform, engine=engine)
        results.append(trainer)
    assert_trainers_identical(*results)


def test_train_rejects_unknown_engine(task_generator, preprocessor,
                                      meta_tasks):
    trainer = build_trainer(task_generator, preprocessor)
    with pytest.raises(ValueError):
        trainer.train(meta_tasks[:2], preprocessor.transform,
                      engine="turbo")


@pytest.mark.parametrize("use_memories", [True, False])
@pytest.mark.parametrize("local_steps", [None, 1, 6])
def test_evaluate_parity(task_generator, preprocessor, meta_tasks,
                         use_memories, local_steps):
    trainer = build_trainer(task_generator, preprocessor,
                            use_memories=use_memories)
    trainer.train(meta_tasks[:6], preprocessor.transform)
    sequential = trainer.evaluate(meta_tasks[6:], preprocessor.transform,
                                  local_steps=local_steps,
                                  engine="sequential")
    batched = trainer.evaluate(meta_tasks[6:], preprocessor.transform,
                               local_steps=local_steps)
    assert sequential == batched


def test_progress_callback_matches_history(task_generator, preprocessor,
                                           meta_tasks):
    trainer = build_trainer(task_generator, preprocessor)
    seen = []
    trainer.train(meta_tasks, preprocessor.transform,
                  progress=lambda e, loss: seen.append((e, loss)))
    assert [loss for _, loss in seen] == trainer.history
    assert [epoch for epoch, _ in seen] == [0, 1]


def _encoded(meta_tasks, preprocessor, n):
    return encode_task_sets(meta_tasks[:n], preprocessor.transform)


class TestPooledAcrossTrainers:
    """Fusing several trainers into shared programs must keep every
    trainer bit-identical to training it alone."""

    def test_pooled_run_matches_solo_runs(self, task_generator, preprocessor,
                                          meta_tasks):
        encoded = _encoded(meta_tasks, preprocessor, 9)
        solo = []
        for seed in (0, 1, 2):
            trainer = build_trainer(task_generator, preprocessor, seed=seed)
            OfflineRun([TrainerSchedule(trainer, encoded)],
                       engine="batched").run()
            solo.append(trainer)
        pooled = [build_trainer(task_generator, preprocessor, seed=seed)
                  for seed in (0, 1, 2)]
        OfflineRun([TrainerSchedule(t, encoded) for t in pooled],
                   engine="batched").run()
        for a, b in zip(solo, pooled):
            assert_trainers_identical(a, b)

    def test_pooled_pretrain_epoch_matches_sequential(
            self, task_generator, preprocessor, meta_tasks):
        encoded = _encoded(meta_tasks, preprocessor, 8)
        # Two pooled epochs (carrying Adam moments across the epoch
        # boundary through the per-schedule slices) vs two sequential.
        pooled = [TrainerSchedule(
            build_trainer(task_generator, preprocessor, seed=s), encoded)
            for s in (3, 4)]
        solo = [TrainerSchedule(
            build_trainer(task_generator, preprocessor, seed=s), encoded)
            for s in (3, 4)]
        for _ in range(2):
            run_pretrain_epoch_pooled(pooled)
            for schedule in solo:
                run_pretrain_epoch_sequential(schedule)
        for a, b in zip(pooled, solo):
            assert np.array_equal(a.trainer.model.flat_parameters(),
                                  b.trainer.model.flat_parameters())
            assert a.pretrain_opt_state["step"] == \
                b.pretrain_opt_state["step"]
            for key in ("m", "v"):
                for x, y in zip(a.pretrain_opt_state[key],
                                b.pretrain_opt_state[key]):
                    assert np.array_equal(x, y)

    def test_mixed_shapes_group_separately(self, task_generator,
                                           preprocessor, meta_tasks):
        """Trainers over different task counts / epochs still pool."""
        enc_a = _encoded(meta_tasks, preprocessor, 9)
        enc_b = _encoded(meta_tasks, preprocessor, 5)
        mk = lambda s, e: build_trainer(task_generator, preprocessor,
                                        seed=s, epochs=e)
        solo = [mk(0, 2), mk(1, 1)]
        OfflineRun([TrainerSchedule(solo[0], enc_a)]).run()
        OfflineRun([TrainerSchedule(solo[1], enc_b)]).run()
        pooled = [mk(0, 2), mk(1, 1)]
        OfflineRun([TrainerSchedule(pooled[0], enc_a),
                    TrainerSchedule(pooled[1], enc_b)]).run()
        for a, b in zip(solo, pooled):
            assert_trainers_identical(a, b)


def test_mixed_shape_task_sets_train_and_match(task_generator, preprocessor,
                                               meta_tasks):
    """Task sets with non-uniform support/query sizes cannot stack into
    one fused program; the default engine must fall back to the
    sequential executor for them — same semantics, no crash."""
    from dataclasses import replace

    tasks = [replace(task,
                     support_x=task.support_x[:len(task.support_x) - (i % 3)],
                     support_y=task.support_y[:len(task.support_y) - (i % 3)])
             for i, task in enumerate(meta_tasks[:6])]
    results = []
    for engine in ("sequential", "batched"):
        trainer = build_trainer(task_generator, preprocessor)
        trainer.train(tasks, preprocessor.transform, engine=engine)
        results.append(trainer)
    assert_trainers_identical(*results)
    # evaluate buckets odd shapes on its own and stays bit-equal too
    assert results[0].evaluate(tasks, preprocessor.transform) == \
        results[1].evaluate(tasks, preprocessor.transform,
                            engine="sequential")


def test_evaluate_rejects_unknown_engine(task_generator, preprocessor,
                                         meta_tasks):
    trainer = build_trainer(task_generator, preprocessor)
    with pytest.raises(ValueError):
        trainer.evaluate(meta_tasks[:2], preprocessor.transform,
                         engine="batchd")


def test_fit_offline_accepts_subspace_iterator():
    """A generator of subspaces must survive the prepare+train passes."""
    from repro.core import LTE, LTEConfig
    from repro.core.meta_training import MetaHyperParams
    from repro.data import make_car
    from repro.data.subspaces import random_decomposition

    table = make_car(n_rows=1200, seed=3)
    config = LTEConfig(budget=20, ku=20, kq=20, n_tasks=3,
                       meta=MetaHyperParams(epochs=1, local_steps=1,
                                            batch_size=2,
                                            pretrain_epochs=0),
                       basic_steps=5, online_steps=2)
    subspaces = random_decomposition(table, dim=2, seed=7)[:2]
    lte = LTE(config)
    lte.fit_offline(table, subspaces=iter(subspaces))
    assert all(state.trainer is not None for state in lte.states.values())


def test_encode_task_sets_matches_per_task_encode(preprocessor, meta_tasks):
    encoded = encode_task_sets(meta_tasks, preprocessor.transform,
                               rows_per_block=64)
    for task, (v_r, sx, sy, qx, qy) in zip(meta_tasks, encoded):
        assert np.array_equal(v_r, task.feature_vector)
        assert np.array_equal(sx, preprocessor.transform(task.support_x))
        assert np.array_equal(qx, preprocessor.transform(task.query_x))
        assert np.array_equal(sy, task.support_y)
        assert np.array_equal(qy, task.query_y)
