"""Tests for the synthetic SDSS/CAR dataset generators."""

import numpy as np
import pytest

from repro.data import DATASET_BUILDERS, load_dataset, make_car, make_sdss


class TestSDSS:
    def test_shape_and_schema(self):
        t = make_sdss(n_rows=2000, seed=0)
        assert t.n_rows == 2000
        assert t.attribute_names == ["rowc", "colc", "ra", "dec",
                                     "sky_u", "sky_g", "sky_r", "sky_i"]

    def test_deterministic_per_seed(self):
        a = make_sdss(n_rows=500, seed=1).data
        b = make_sdss(n_rows=500, seed=1).data
        c = make_sdss(n_rows=500, seed=2).data
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_coordinate_ranges(self):
        t = make_sdss(n_rows=3000, seed=0)
        assert t.column("ra").min() >= 0 and t.column("ra").max() < 360
        assert t.column("dec").min() >= -25 and t.column("dec").max() <= 70
        assert t.column("rowc").min() >= 0
        assert t.column("colc").max() <= 2048

    def test_sky_bands_strongly_correlated(self):
        # The shared sky-brightness factor must induce correlation.
        t = make_sdss(n_rows=5000, seed=0)
        corr = np.corrcoef(t.column("sky_g"), t.column("sky_r"))[0, 1]
        assert corr > 0.7

    def test_ra_multimodal(self):
        # The survey-stripe mixture leaves a density gap around ra ~ 100.
        t = make_sdss(n_rows=20000, seed=0)
        hist, _ = np.histogram(t.column("ra"), bins=36, range=(0, 360))
        assert hist.min() < 0.2 * hist.max()


class TestCAR:
    def test_shape_and_schema(self):
        t = make_car(n_rows=1500, seed=0)
        assert t.n_rows == 1500
        assert t.attribute_names == ["price", "mileage_km", "year",
                                     "power_ps", "engine_cc"]

    def test_value_plausibility(self):
        t = make_car(n_rows=3000, seed=0)
        assert t.column("price").min() >= 150
        assert t.column("year").min() >= 1990
        assert t.column("year").max() <= 2016
        assert t.column("mileage_km").min() >= 0

    def test_price_decreases_with_mileage(self):
        t = make_car(n_rows=8000, seed=0)
        corr = np.corrcoef(t.column("price"), t.column("mileage_km"))[0, 1]
        assert corr < -0.1

    def test_price_heavy_right_tail(self):
        t = make_car(n_rows=8000, seed=0)
        price = t.column("price")
        assert price.mean() > np.median(price)  # right-skewed

    def test_engine_clusters_on_100cc_steps(self):
        t = make_car(n_rows=2000, seed=0)
        assert np.allclose(t.column("engine_cc") % 100, 0)


class TestLoader:
    def test_loads_both(self):
        assert load_dataset("sdss", n_rows=200).name == "SDSS"
        assert load_dataset("CAR", n_rows=200).name == "CAR"

    def test_registry_complete(self):
        assert set(DATASET_BUILDERS) == {"sdss", "car"}

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_dataset("imagenet")

    def test_overrides(self):
        t = load_dataset("car", n_rows=123, seed=77)
        assert t.n_rows == 123
