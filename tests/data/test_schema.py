"""Tests for the Table/Attribute abstraction."""

import numpy as np
import pytest

from repro.data import Attribute, Table


def small_table():
    return Table("t", ["a", "b", "c"], np.arange(12, dtype=float).reshape(4, 3))


class TestAttribute:
    def test_hint_validation(self):
        with pytest.raises(ValueError):
            Attribute("x", hint="weird")

    def test_equality_and_hash(self):
        assert Attribute("x") == Attribute("x")
        assert Attribute("x") != Attribute("x", hint="modal")
        assert len({Attribute("x"), Attribute("x")}) == 1

    def test_repr(self):
        assert "modal" in repr(Attribute("x", hint="modal"))


class TestTable:
    def test_shape_accessors(self):
        t = small_table()
        assert t.n_rows == 4
        assert t.n_attributes == 3
        assert len(t) == 4
        assert t.attribute_names == ["a", "b", "c"]

    def test_column_by_name(self):
        t = small_table()
        assert np.allclose(t.column("b"), [1, 4, 7, 10])

    def test_unknown_column_raises_keyerror(self):
        with pytest.raises(KeyError):
            small_table().column("zzz")

    def test_project_preserves_attribute_objects(self):
        t = Table("t", [Attribute("a", hint="modal"), Attribute("b")],
                  np.zeros((3, 2)))
        proj = t.project(["b", "a"])
        assert proj.attribute_names == ["b", "a"]
        assert proj.attribute("a").hint == "modal"
        assert proj.data.shape == (3, 2)

    def test_project_reorders_data(self):
        t = small_table()
        proj = t.project(["c", "a"])
        assert np.allclose(proj.data[:, 0], t.column("c"))
        assert np.allclose(proj.data[:, 1], t.column("a"))

    def test_sample_rows_capped_and_unique(self):
        t = small_table()
        rows = t.sample_rows(100, seed=0)
        assert rows.shape == (4, 3)
        assert len(np.unique(rows, axis=0)) == 4

    def test_sample_rows_deterministic(self):
        t = small_table()
        assert np.allclose(t.sample_rows(2, seed=5), t.sample_rows(2, seed=5))

    def test_validation(self):
        with pytest.raises(ValueError):
            Table("t", ["a"], np.zeros(3))
        with pytest.raises(ValueError):
            Table("t", ["a", "b"], np.zeros((3, 1)))
        with pytest.raises(ValueError):
            Table("t", ["a", "a"], np.zeros((3, 2)))

    def test_repr(self):
        assert "rows=4" in repr(small_table())
