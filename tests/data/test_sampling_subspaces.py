"""Tests for sampling utilities and subspace decomposition."""

import numpy as np
import pytest

from repro.data import (Subspace, match_subspaces, random_decomposition,
                        random_sample, ratio_sample, stratified_indices)
from repro.data.schema import Table


class TestRandomSample:
    def test_size_and_membership(self):
        data = np.arange(100, dtype=float)[:, None]
        sample = random_sample(data, 10, seed=0)
        assert sample.shape == (10, 1)
        assert np.isin(sample, data).all()

    def test_capped_at_population(self):
        data = np.arange(5, dtype=float)[:, None]
        assert random_sample(data, 50, seed=0).shape == (5, 1)

    def test_no_replacement(self):
        data = np.arange(50, dtype=float)[:, None]
        sample = random_sample(data, 50, seed=0)
        assert len(np.unique(sample)) == 50


class TestRatioSample:
    def test_min_rows_floor(self):
        data = np.arange(500, dtype=float)[:, None]
        assert len(ratio_sample(data, 0.01, seed=0, min_rows=100)) == 100

    def test_ratio_applied_to_large_data(self):
        data = np.arange(100_000, dtype=float)[:, None]
        assert len(ratio_sample(data, 0.01, seed=0)) == 1000

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            ratio_sample(np.zeros((10, 1)), 0.0)
        with pytest.raises(ValueError):
            ratio_sample(np.zeros((10, 1)), 1.5)


class TestStratified:
    def test_per_class_cap(self):
        labels = np.array([0] * 10 + [1] * 3)
        idx = stratified_indices(labels, per_class=5, seed=0)
        assert (labels[idx] == 0).sum() == 5
        assert (labels[idx] == 1).sum() == 3

    def test_empty(self):
        assert stratified_indices(np.array([]), 3).size == 0


def make_table(n_attrs):
    names = ["a{}".format(i) for i in range(n_attrs)]
    return Table("t", names, np.zeros((10, n_attrs)))


class TestDecomposition:
    def test_covers_all_attributes_disjointly(self):
        table = make_table(8)
        subs = random_decomposition(table, dim=2, seed=0)
        cols = [c for s in subs for c in s.columns]
        assert sorted(cols) == list(range(8))
        assert all(s.dim == 2 for s in subs)

    def test_odd_remainder_kept(self):
        table = make_table(5)
        subs = random_decomposition(table, dim=2, seed=0)
        dims = sorted(s.dim for s in subs)
        assert dims == [1, 2, 2]

    def test_seed_controls_grouping(self):
        table = make_table(6)
        a = random_decomposition(table, dim=2, seed=1)
        b = random_decomposition(table, dim=2, seed=1)
        assert [s.key for s in a] == [s.key for s in b]

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            random_decomposition(make_table(4), dim=0)


class TestSubspace:
    def test_projection(self):
        data = np.arange(12, dtype=float).reshape(3, 4)
        s = Subspace(["x", "y"], [2, 0])
        assert np.allclose(s.project(data), data[:, [2, 0]])

    def test_key_is_order_invariant(self):
        assert Subspace(["a", "b"], [0, 1]) == Subspace(["b", "a"], [1, 0])

    def test_hashable(self):
        assert len({Subspace(["a"], [0]), Subspace(["a"], [0])}) == 1

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            Subspace(["a"], [0, 1])


class TestMatching:
    def test_match_by_attribute_set(self):
        user = [Subspace(["a", "b"], [0, 1]), Subspace(["c"], [2])]
        meta = [Subspace(["b", "a"], [1, 0])]
        mapping = match_subspaces(user, meta)
        assert mapping[user[0]] == meta[0]
        assert mapping[user[1]] is None
