"""Tests for Jenks natural-breaks classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import JenksBreaks, jenks_breaks


class TestBreaks:
    def test_two_obvious_clusters(self):
        data = np.array([1.0, 1.1, 1.2, 9.0, 9.1, 9.2])
        bounds = jenks_breaks(data, 2)
        assert bounds[0] == 1.0
        assert bounds[-1] == 9.2
        # The inner boundary must split the two groups.
        assert 1.2 <= bounds[1] <= 9.0

    def test_boundaries_ascending(self):
        rng = np.random.default_rng(0)
        bounds = jenks_breaks(rng.normal(size=200), 5)
        assert np.all(np.diff(bounds) >= 0)

    def test_exact_on_three_groups(self):
        data = np.array([0.0, 0.1, 5.0, 5.1, 10.0, 10.1])
        bounds = jenks_breaks(data, 3)
        labels = np.searchsorted(bounds[1:-1], data, side="right")
        assert len(np.unique(labels[:2])) == 1
        assert len(np.unique(labels[2:4])) == 1
        assert len(np.unique(labels[4:])) == 1

    def test_degenerate_fewer_uniques_than_classes(self):
        bounds = jenks_breaks(np.array([1.0, 1.0, 2.0]), 5)
        assert bounds[0] == 1.0 and bounds[-1] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jenks_breaks(np.array([]), 2)
        with pytest.raises(ValueError):
            jenks_breaks(np.array([1.0, 2.0, 3.0]), 0)

    def test_minimizes_within_class_variance_vs_uniform_split(self):
        # Jenks on clustered data must beat an arbitrary equal-width split.
        data = np.concatenate([np.random.default_rng(1).normal(0, 0.1, 50),
                               np.random.default_rng(2).normal(10, 0.1, 50)])
        bounds = jenks_breaks(data, 2)

        def ssd_of_partition(split_value):
            # A Jenks inner boundary is the first value of the right class.
            left = data[data < split_value]
            right = data[data >= split_value]
            total = 0.0
            for part in (left, right):
                if len(part):
                    total += ((part - part.mean()) ** 2).sum()
            return total

        assert ssd_of_partition(bounds[1]) <= ssd_of_partition(2.5) + 1e-9


class TestJenksBreaksClass:
    def test_predict_interval_bounds_contain_value(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=300)
        jkc = JenksBreaks(4, seed=0).fit(data)
        idx = jkc.predict(data)
        for value, i in zip(data[:50], idx[:50]):
            lo, hi = jkc.interval(int(i))
            assert lo - 1e-9 <= value <= hi + 1e-9 or \
                i in (0, jkc.n_intervals - 1)  # clipped extremes

    def test_out_of_range_values_clipped(self):
        jkc = JenksBreaks(3, seed=0).fit(np.linspace(0, 1, 50))
        assert jkc.predict(np.array([-100.0]))[0] == 0
        assert jkc.predict(np.array([100.0]))[0] == jkc.n_intervals - 1

    def test_subsampling_kicks_in(self):
        data = np.random.default_rng(4).normal(size=5000)
        jkc = JenksBreaks(3, max_samples=200, seed=0).fit(data)
        assert jkc.n_intervals >= 1

    def test_interval_index_errors(self):
        jkc = JenksBreaks(2, seed=0).fit(np.arange(10.0))
        with pytest.raises(IndexError):
            jkc.interval(99)

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            JenksBreaks(2).predict(np.array([1.0]))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(-100, 100), min_size=5, max_size=50),
       st.integers(1, 4))
def test_property_bounds_cover_data(values, k):
    values = np.asarray(values)
    bounds = jenks_breaks(values, k)
    assert bounds[0] <= values.min() + 1e-9
    assert bounds[-1] >= values.max() - 1e-9
    assert np.all(np.diff(bounds) >= -1e-12)
