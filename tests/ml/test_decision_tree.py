"""Tests for the CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTree
from repro.geometry import BoxRegion


def box_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 1, size=(n, 2))
    region = BoxRegion([0.3, 0.3], [0.7, 0.7])
    return points, region.label(points)


class TestFit:
    def test_learns_axis_aligned_box_well(self):
        x, y = box_data()
        tree = DecisionTree(max_depth=6).fit(x, y)
        xt, yt = box_data(seed=1)
        assert (tree.predict(xt) == yt).mean() > 0.9

    def test_pure_labels_single_leaf(self):
        x = np.random.default_rng(0).uniform(size=(50, 2))
        tree = DecisionTree().fit(x, np.ones(50))
        assert tree.root_.is_leaf
        assert tree.n_leaves() == 1
        assert (tree.predict(x) == 1).all()

    def test_depth_capped(self):
        x, y = box_data(n=600)
        tree = DecisionTree(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_min_samples_split_respected(self):
        x, y = box_data(n=30)
        tree = DecisionTree(max_depth=10, min_samples_split=40).fit(x, y)
        assert tree.root_.is_leaf

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 2)))


class TestProba:
    def test_probability_in_unit_interval(self):
        x, y = box_data()
        tree = DecisionTree(max_depth=4).fit(x, y)
        proba = tree.predict_proba(x)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_predict_is_thresholded_proba(self):
        x, y = box_data(seed=2)
        tree = DecisionTree(max_depth=4).fit(x, y)
        assert np.array_equal(tree.predict(x),
                              (tree.predict_proba(x) >= 0.5).astype(int))


class TestPositiveBoxes:
    def test_boxes_cover_positive_leaf_predictions(self):
        x, y = box_data(n=800, seed=3)
        tree = DecisionTree(max_depth=6).fit(x, y)
        boxes = tree.positive_boxes(np.zeros(2), np.ones(2))
        assert boxes, "a well-fit tree must have positive leaves"

        def in_any_box(points):
            out = np.zeros(len(points), dtype=bool)
            for lo, hi in boxes:
                out |= ((points >= lo) & (points <= hi)).all(axis=1)
            return out

        grid = np.random.default_rng(4).uniform(size=(500, 2))
        tree_pred = tree.predict(grid).astype(bool)
        box_pred = in_any_box(grid)
        # Boxes are exactly the >=0.5 leaves: predictions must agree
        # (up to boundary ties on split thresholds).
        assert (tree_pred == box_pred).mean() > 0.98

    def test_no_positive_leaves_no_boxes(self):
        x = np.random.default_rng(5).uniform(size=(40, 2))
        tree = DecisionTree().fit(x, np.zeros(40))
        assert tree.positive_boxes(np.zeros(2), np.ones(2)) == []


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 200), st.integers(1, 5))
def test_property_training_accuracy_nondecreasing_in_depth(seed, depth):
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=(80, 2))
    y = (x[:, 0] + 0.3 * x[:, 1] > 0.8).astype(int)
    shallow = DecisionTree(max_depth=depth).fit(x, y)
    deep = DecisionTree(max_depth=depth + 2).fit(x, y)
    acc_shallow = (shallow.predict(x) == y).mean()
    acc_deep = (deep.predict(x) == y).mean()
    assert acc_deep >= acc_shallow - 1e-12
