"""Tests for the 1-D Gaussian mixture model (EM)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import GaussianMixture1D


def bimodal(n=600, seed=0):
    rng = np.random.default_rng(seed)
    return np.concatenate([rng.normal(-5, 0.5, n // 2),
                           rng.normal(5, 0.8, n // 2)])


class TestFit:
    def test_recovers_two_separated_modes(self):
        gmm = GaussianMixture1D(2, seed=0).fit(bimodal())
        means = np.sort(gmm.means_)
        assert abs(means[0] - (-5)) < 0.3
        assert abs(means[1] - 5) < 0.3

    def test_weights_sum_to_one(self):
        gmm = GaussianMixture1D(3, seed=0).fit(bimodal(seed=1))
        assert np.isclose(gmm.weights_.sum(), 1.0)
        assert (gmm.weights_ >= 0).all()

    def test_stds_floored(self):
        gmm = GaussianMixture1D(2, seed=0, min_std=1e-3).fit(
            np.array([1.0] * 10 + [2.0] * 10))
        assert (gmm.stds_ >= 1e-3 - 1e-12).all()

    def test_single_component_is_sample_stats(self):
        data = np.random.default_rng(2).normal(3.0, 2.0, 500)
        gmm = GaussianMixture1D(1, seed=0).fit(data)
        assert abs(gmm.means_[0] - data.mean()) < 1e-6
        assert abs(gmm.stds_[0] - data.std()) < 1e-3

    def test_needs_enough_samples(self):
        with pytest.raises(ValueError):
            GaussianMixture1D(5).fit(np.array([1.0, 2.0]))

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            GaussianMixture1D(0)


class TestInference:
    def test_predict_assigns_to_closest_mode(self):
        gmm = GaussianMixture1D(2, seed=0).fit(bimodal(seed=3))
        low_comp = gmm.predict(np.array([-5.0]))[0]
        high_comp = gmm.predict(np.array([5.0]))[0]
        assert low_comp != high_comp

    def test_responsibilities_rows_sum_to_one(self):
        gmm = GaussianMixture1D(3, seed=0).fit(bimodal(seed=4))
        resp = gmm.responsibilities(np.linspace(-8, 8, 50))
        assert np.allclose(resp.sum(axis=1), 1.0)
        assert (resp >= 0).all()

    def test_sample_shape_and_range(self):
        gmm = GaussianMixture1D(2, seed=0).fit(bimodal(seed=5))
        samples = gmm.sample(200, seed=1)
        assert samples.shape == (200,)
        assert samples.min() > -10 and samples.max() < 10

    def test_use_before_fit_raises(self):
        gmm = GaussianMixture1D(2)
        with pytest.raises(RuntimeError):
            gmm.predict(np.array([0.0]))
        with pytest.raises(RuntimeError):
            gmm.responsibilities(np.array([0.0]))
        with pytest.raises(RuntimeError):
            gmm.sample(3)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 4), st.integers(0, 30))
def test_property_responsibilities_are_distributions(k, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=100) * (1 + seed % 3)
    gmm = GaussianMixture1D(k, seed=seed).fit(data)
    resp = gmm.responsibilities(data[:20])
    assert resp.shape == (20, k)
    assert np.allclose(resp.sum(axis=1), 1.0)
    assert np.array_equal(gmm.predict(data[:20]), resp.argmax(axis=1))
