"""Tests for k-means clustering and pairwise distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import KMeans, pairwise_distances


def three_blobs(n_per=50, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    return np.vstack([rng.normal(c, 0.5, size=(n_per, 2)) for c in centers])


class TestPairwiseDistances:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(4, 3))
        dist = pairwise_distances(a, b)
        for i in range(5):
            for j in range(4):
                assert np.isclose(dist[i, j],
                                  np.linalg.norm(a[i] - b[j]))

    def test_self_diagonal_zero(self):
        a = np.random.default_rng(2).normal(size=(6, 2))
        dist = pairwise_distances(a, a)
        # The expanded-square form loses ~1e-8 to cancellation.
        assert np.allclose(np.diag(dist), 0.0, atol=1e-6)

    def test_no_negative_sqrt_artifacts(self):
        # Near-identical points can make the squared form slightly negative.
        a = np.ones((3, 2)) * 1e8
        dist = pairwise_distances(a, a)
        assert np.isfinite(dist).all()
        assert (dist >= 0).all()


class TestKMeans:
    def test_recovers_separated_blobs(self):
        data = three_blobs()
        km = KMeans(3, seed=0).fit(data)
        # Each true blob center must be close to some learned center.
        for true in [[0, 0], [10, 0], [0, 10]]:
            dist = np.linalg.norm(km.centers_ - np.asarray(true), axis=1)
            assert dist.min() < 1.0

    def test_labels_are_nearest_center(self):
        data = three_blobs(seed=3)
        km = KMeans(3, seed=0).fit(data)
        expected = pairwise_distances(data, km.centers_).argmin(axis=1)
        assert np.array_equal(km.labels_, expected)

    def test_predict_consistent_with_fit_labels(self):
        data = three_blobs(seed=4)
        km = KMeans(3, seed=0).fit(data)
        assert np.array_equal(km.predict(data), km.labels_)

    def test_inertia_decreases_with_more_clusters(self):
        data = three_blobs(seed=5)
        i2 = KMeans(2, seed=0).fit(data).inertia_
        i6 = KMeans(6, seed=0).fit(data).inertia_
        assert i6 < i2

    def test_k_equals_one(self):
        data = three_blobs(seed=6)
        km = KMeans(1, seed=0).fit(data)
        assert np.allclose(km.centers_[0], data.mean(axis=0), atol=1e-6)

    def test_k_equals_n(self):
        data = np.arange(8, dtype=float).reshape(4, 2)
        km = KMeans(4, seed=0).fit(data)
        assert km.inertia_ < 1e-12

    def test_duplicate_points_dont_crash(self):
        data = np.tile([[1.0, 2.0]], (20, 1))
        km = KMeans(3, seed=0).fit(data)
        assert km.centers_.shape == (3, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros(5))
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((2, 2)))

    def test_deterministic_given_seed(self):
        data = three_blobs(seed=7)
        a = KMeans(3, seed=9).fit(data).centers_
        b = KMeans(3, seed=9).fit(data).centers_
        assert np.allclose(a, b)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5), st.integers(30, 60), st.integers(0, 100))
def test_property_centers_are_member_means(k, n, seed):
    """Lloyd fixed point: every non-empty cluster center == member mean."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, 2))
    km = KMeans(k, seed=seed, max_iter=300).fit(data)
    for j in range(k):
        members = data[km.labels_ == j]
        if len(members):
            assert np.allclose(km.centers_[j], members.mean(axis=0),
                               atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(0, 50))
def test_property_every_point_gets_valid_label(k, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(40, 3))
    km = KMeans(k, seed=seed).fit(data)
    assert km.labels_.shape == (40,)
    assert km.labels_.min() >= 0 and km.labels_.max() < k
