"""Tests for the SMO-trained kernel SVM."""

import numpy as np
import pytest

from repro.ml import SVC, linear_kernel, rbf_kernel


def linearly_separable(n=60, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal([2.0, 2.0], 0.4, size=(n // 2, 2))
    neg = rng.normal([-2.0, -2.0], 0.4, size=(n // 2, 2))
    x = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n // 2), np.zeros(n // 2)]).astype(int)
    return x, y


def ring_inside(n=120, seed=1):
    """Positive cluster at origin, negatives on a surrounding ring."""
    rng = np.random.default_rng(seed)
    pos = rng.normal(0, 0.4, size=(n // 2, 2))
    angles = rng.uniform(0, 2 * np.pi, n // 2)
    neg = np.column_stack([3 * np.cos(angles), 3 * np.sin(angles)])
    neg += rng.normal(0, 0.2, size=neg.shape)
    x = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n // 2), np.zeros(n // 2)]).astype(int)
    return x, y


class TestKernels:
    def test_rbf_diagonal_is_one(self):
        a = np.random.default_rng(0).normal(size=(5, 3))
        k = rbf_kernel(a, a, gamma=0.7)
        assert np.allclose(np.diag(k), 1.0)

    def test_rbf_symmetry_and_range(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(6, 2))
        k = rbf_kernel(a, a, gamma=1.0)
        assert np.allclose(k, k.T)
        assert (k > 0).all() and (k <= 1 + 1e-12).all()

    def test_linear_kernel_is_gram(self):
        a = np.random.default_rng(2).normal(size=(4, 3))
        assert np.allclose(linear_kernel(a, a), a @ a.T)


class TestSVC:
    def test_separates_linear_data(self):
        x, y = linearly_separable()
        model = SVC(C=10.0, kernel="linear").fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_rbf_solves_ring(self):
        x, y = ring_inside()
        model = SVC(C=10.0, kernel="rbf").fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9
        # Center is inside, far point is outside.
        assert model.predict(np.array([[0.0, 0.0]]))[0] == 1
        assert model.predict(np.array([[5.0, 5.0]]))[0] == 0

    def test_decision_function_sign_matches_predict(self):
        x, y = linearly_separable(seed=3)
        model = SVC(kernel="rbf").fit(x, y)
        scores = model.decision_function(x)
        assert np.array_equal(model.predict(x), (scores > 0).astype(int))

    def test_single_class_degenerates_to_constant(self):
        x = np.random.default_rng(4).normal(size=(10, 2))
        model = SVC().fit(x, np.ones(10, dtype=int))
        assert (model.predict(x) == 1).all()
        model0 = SVC().fit(x, np.zeros(10, dtype=int))
        assert (model0.predict(x) == 0).all()

    def test_gamma_scale_heuristic(self):
        x, y = linearly_separable(seed=5)
        model = SVC(kernel="rbf", gamma=None).fit(x, y)
        assert model._gamma_value > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SVC(C=0.0)
        with pytest.raises(ValueError):
            SVC(kernel="poly")
        with pytest.raises(ValueError):
            SVC().fit(np.zeros((4, 2)), np.array([0, 1, 2, 1]))
        with pytest.raises(RuntimeError):
            SVC().decision_function(np.zeros((1, 2)))

    def test_small_budget_training_sets(self):
        # Exploration rounds call fit with very few points; must not crash.
        x = np.array([[0.0, 0.0], [1.0, 1.0], [0.1, 0.0], [0.9, 1.0]])
        y = np.array([0, 1, 0, 1])
        model = SVC(kernel="rbf").fit(x, y)
        assert model.predict(x).shape == (4,)

    def test_deterministic_given_seed(self):
        x, y = ring_inside(seed=6)
        a = SVC(seed=3).fit(x, y).decision_function(x[:5])
        b = SVC(seed=3).fit(x, y).decision_function(x[:5])
        assert np.allclose(a, b)
