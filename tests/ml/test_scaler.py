"""Tests for min-max scaling utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import MinMaxScaler, normalize_within


class TestNormalizeWithin:
    def test_basic_interval(self):
        out = normalize_within(np.array([0.0, 5.0, 10.0]), 0.0, 10.0)
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_clips_outside_values(self):
        out = normalize_within(np.array([-5.0, 15.0]), 0.0, 10.0)
        assert np.allclose(out, [0.0, 1.0])

    def test_degenerate_interval_maps_to_half(self):
        out = normalize_within(np.array([3.0, 4.0]), 5.0, 5.0)
        assert np.allclose(out, 0.5)


class TestMinMaxScaler:
    def test_transform_range(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 3)) * 10
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        assert np.isclose(scaled.min(axis=0).max(), 0.0)
        assert np.isclose(scaled.max(axis=0).min(), 1.0)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(20, 2))
        scaler = MinMaxScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)),
                           data)

    def test_constant_column_handled(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = MinMaxScaler().fit_transform(data)
        assert np.isfinite(scaled).all()

    def test_out_of_sample_clipped(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert np.allclose(scaler.transform(np.array([[20.0]])), 1.0)

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            MinMaxScaler().inverse_transform(np.zeros((2, 2)))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=30))
def test_property_scaled_values_in_unit_interval(values):
    data = np.asarray(values)[:, None]
    scaled = MinMaxScaler().fit_transform(data)
    assert (scaled >= 0).all() and (scaled <= 1).all()
