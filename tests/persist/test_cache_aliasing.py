"""Mutable-state sharing audit: caches cannot be poisoned through aliases.

Three layers of the contract (ISSUE 2, satellite 4):

* ``core.memory.LRUStore`` stores references by design — that sharing is
  now *documented*, and the layers above it must compensate;
* ``serve.cache.PredictionCache`` freezes a private copy on ``put``, so
  neither the producer's array nor an in-place write through a returned
  reference can change a cached prediction;
* the manager's public API returns writable copies, and checkpoint
  restore deep-copies, so a restored manager never aliases its snapshot.
"""

import numpy as np
import pytest

from repro.core.memory import LRUStore
from repro.serve import PredictionCache, SessionManager
from repro.serve.cache import rows_digest


pytestmark = pytest.mark.smoke


class TestLRUStoreSharing:
    def test_store_holds_references_as_documented(self):
        store = LRUStore(4)
        value = np.arange(3)
        store.put("k", value)
        assert store.get("k") is value  # the documented aliasing contract

    def test_items_does_not_touch_recency(self):
        store = LRUStore(2)
        store.put("old", 1)
        store.put("new", 2)
        list(store.items())
        store.put("third", 3)           # evicts "old", not "new"
        assert "old" not in store
        assert "new" in store

    def test_items_order_replays_lru(self):
        store = LRUStore(3)
        for key in ("a", "b", "c"):
            store.put(key, key)
        store.get("a")                  # bump recency
        replay = LRUStore(3)
        for key, value in store.items():
            replay.put(key, value)
        replay.put("d", "d")            # evicts the true LRU entry: "b"
        assert "b" not in replay
        assert "a" in replay


class TestPredictionCacheFreezing:
    def test_producer_mutation_cannot_reach_cache(self):
        cache = PredictionCache(4)
        value = np.array([1, 0, 1])
        cache.put("k", value)
        value[:] = 9
        assert np.array_equal(cache.get("k"), [1, 0, 1])

    def test_returned_array_is_frozen(self):
        cache = PredictionCache(4)
        cache.put("k", np.array([1, 0, 1]))
        returned = cache.get("k")
        with pytest.raises(ValueError):
            returned[:] = 9
        assert np.array_equal(cache.get("k"), [1, 0, 1])

    def test_state_dict_is_deep(self):
        cache = PredictionCache(4)
        cache.put((0, ("a",), 1, "d"), np.array([1, 0]))
        state = cache.state_dict()
        state["entries"][0]["value"][:] = 9     # mutate the snapshot
        assert np.array_equal(cache.get((0, ("a",), 1, "d")), [1, 0])
        restored = PredictionCache(4)
        restored.load_state_dict(cache.state_dict())
        assert np.array_equal(restored.get((0, ("a",), 1, "d")), [1, 0])


@pytest.fixture()
def adapted_manager(persist_lte, persist_subspaces, make_oracle):
    manager = SessionManager(persist_lte)
    sid = manager.open_session(variant="meta_star",
                               subspaces=persist_subspaces, seed=2)
    oracle = make_oracle(500)
    for subspace, tuples in manager.initial_tuples(sid).items():
        manager.submit_labels(sid, subspace,
                              oracle.label_subspace(subspace, tuples))
    manager.flush()
    return manager, sid


class TestManagerAliasing:
    def test_mutating_returned_prediction_cannot_poison_cache(
            self, adapted_manager, eval_rows):
        manager, sid = adapted_manager
        first = manager.predict(sid, eval_rows)
        original = first.copy()
        first[:] = 9                    # caller scribbles on the result
        again = manager.predict(sid, eval_rows)
        assert np.array_equal(again, original)

    def test_mutating_subspace_prediction_cannot_poison_cache(
            self, adapted_manager, persist_subspaces, persist_lte):
        manager, sid = adapted_manager
        subspace = persist_subspaces[0]
        points = persist_lte.states[subspace].to_raw(
            persist_lte.states[subspace].data[:20])
        first = manager.predict_subspace(sid, subspace, points)
        original = first.copy()
        first[:] = 9
        assert np.array_equal(
            manager.predict_subspace(sid, subspace, points), original)

    def test_restore_does_not_alias_snapshot(self, adapted_manager,
                                             persist_lte, eval_rows):
        manager, sid = adapted_manager
        expected = manager.predict(sid, eval_rows)  # warm the cache
        snapshot = manager.snapshot()
        restored = SessionManager.restore(persist_lte, snapshot)
        # Scribble over every array in the snapshot itself...
        for entry in snapshot["cache"]["entries"]:
            entry["value"][:] = 9
        for entry in snapshot["sessions"]:
            for sub_state in entry["state"]["sessions"]:
                sub_state["initial_scaled"][:] = 9
        # ...the restored manager must be unaffected.
        assert np.array_equal(restored.predict(sid, eval_rows), expected)
        digest = rows_digest(np.atleast_2d(
            np.asarray(eval_rows, dtype=np.float64)))
        assert isinstance(digest, str)
