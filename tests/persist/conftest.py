"""Shared fixtures for the persist tests: one tiny trained LTE system."""

import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_car
from repro.data.subspaces import random_decomposition


@pytest.fixture(scope="session")
def persist_config():
    return LTEConfig(budget=20, ku=20, kq=25, n_tasks=5,
                     meta=MetaHyperParams(epochs=1, local_steps=2,
                                          batch_size=3, pretrain_epochs=1),
                     basic_steps=10, online_steps=3)


@pytest.fixture(scope="session")
def persist_table():
    return make_car(n_rows=1500, seed=41)


@pytest.fixture(scope="session")
def persist_subspaces(persist_table, persist_config):
    return random_decomposition(persist_table,
                                dim=persist_config.subspace_dim,
                                seed=persist_config.seed)[:2]


@pytest.fixture(scope="session")
def persist_lte(persist_table, persist_config, persist_subspaces):
    lte = LTE(persist_config)
    lte.fit_offline(persist_table, subspaces=persist_subspaces)
    return lte


@pytest.fixture(scope="session")
def make_oracle(persist_lte, persist_subspaces):
    """Factory: a distinct conjunctive ground-truth oracle per seed."""
    from repro.bench import subspace_region
    from repro.explore import ConjunctiveOracle

    def factory(seed):
        return ConjunctiveOracle({
            s: subspace_region(persist_lte.states[s], UISMode(1, 8),
                               seed=seed + i)
            for i, s in enumerate(persist_subspaces)})

    return factory


@pytest.fixture()
def eval_rows(persist_lte):
    return persist_lte.table.sample_rows(200, seed=5)
