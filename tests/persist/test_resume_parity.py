"""Mid-run interruption parity: restore-and-continue == never interrupted.

The acceptance property of the persist subsystem: a
:class:`~repro.serve.SessionManager` snapshotted mid-workload — adapted
sessions, a *pending* (unflushed) label batch, a warm prediction cache —
and restored through an actual disk round trip must serve bit-identical
predictions AND preserve cache hit counts versus the manager that was
never interrupted, for all three variants.
"""

import numpy as np
import pytest

from repro import persist
from repro.explore import score_session
from repro.serve import SessionManager


def _label_initial(manager, sid, oracle):
    for subspace, tuples in manager.initial_tuples(sid).items():
        manager.submit_labels(sid, subspace,
                              oracle.label_subspace(subspace, tuples))


def _extra_round(manager, sid, subspace, oracle, lte, n=4):
    state = lte.states[subspace]
    tuples = state.to_raw(state.data[10:10 + n])
    manager.add_labels(sid, subspace, tuples,
                       oracle.label_subspace(subspace, tuples))


def _continue_workload(manager, sids, subspace, oracles, lte, eval_rows,
                       fresh_rows):
    """The post-snapshot half of the workload; returns every observable."""
    out = {}
    # Warm-cache retrieval first: must hit the restored cache.
    out["cached"] = {sid: manager.predict(sid, eval_rows) for sid in sids}
    # Re-adaptation round for session 0 (drains the snapshotted pending
    # batch too), then fresh predictions under the bumped model version.
    _extra_round(manager, sids[0], subspace, oracles[0], lte)
    out["polls"] = {sid: manager.poll(sid) for sid in sids}
    out["readapted"] = {sid: manager.predict(sid, eval_rows)
                        for sid in sids}
    out["fresh"] = {sid: manager.predict(sid, fresh_rows) for sid in sids}
    out["stats"] = manager.stats
    return out


@pytest.mark.slow
@pytest.mark.parametrize("variant", ["basic", "meta", "meta_star"])
def test_snapshot_restore_parity(tmp_path, persist_lte, persist_subspaces,
                                 make_oracle, eval_rows, variant):
    lte = persist_lte
    oracles = [make_oracle(100), make_oracle(200)]
    fresh_rows = lte.table.sample_rows(150, seed=77)
    subspace = persist_subspaces[0]

    def build_to_snapshot_point():
        """N submit/flush cycles + a pending batch left in the queue."""
        manager = SessionManager(lte)
        sids = [manager.open_session(variant=variant,
                                     subspaces=persist_subspaces,
                                     seed=10 + k) for k in range(2)]
        for sid, oracle in zip(sids, oracles):
            _label_initial(manager, sid, oracle)
        manager.flush()
        for sid in sids:                       # populate the cache
            manager.predict(sid, eval_rows)
        manager.predict(sids[0], eval_rows)    # and record a cache hit
        # Leave session 1's next label round *pending* at snapshot time.
        state = lte.states[subspace]
        tuples = state.to_raw(state.data[30:33])
        manager.add_labels(sids[1], subspace, tuples,
                           oracles[1].label_subspace(subspace, tuples))
        return manager, sids

    # Interrupted path: snapshot -> disk -> restore -> continue.
    manager_a, sids = build_to_snapshot_point()
    assert manager_a.pending(sids[1])          # snapshot catches real work
    persist.save_manager(tmp_path / "snap", manager_a,
                         meta={"variant": variant})
    restored = persist.load_manager(tmp_path / "snap", lte)
    assert restored.pending(sids[1]) == manager_a.pending(sids[1])
    continued = _continue_workload(restored, sids, subspace, oracles, lte,
                                   eval_rows, fresh_rows)

    # Uninterrupted control: identical workload, no snapshot/restore.
    manager_b, sids_b = build_to_snapshot_point()
    assert sids_b == sids                      # deterministic session ids
    control = _continue_workload(manager_b, sids, subspace, oracles, lte,
                                 eval_rows, fresh_rows)

    for phase in ("cached", "readapted", "fresh"):
        for sid in sids:
            assert np.array_equal(continued[phase][sid],
                                  control[phase][sid]), (phase, sid)
    assert continued["polls"] == control["polls"]
    # Cache hit/miss counters — not just entry counts — are preserved.
    assert continued["stats"] == control["stats"]
    assert continued["stats"]["cache"]["hits"] > 0


@pytest.mark.parametrize("variant", ["meta", "meta_star"])
def test_session_checkpoint_resume(tmp_path, persist_lte, persist_subspaces,
                                   make_oracle, eval_rows, variant):
    """Sequential sessions are resumable too: save -> load -> continue."""
    lte = persist_lte
    oracle = make_oracle(300)
    session = lte.start_session(variant=variant,
                                subspaces=persist_subspaces, seed=3)
    for subspace, tuples in session.initial_tuples().items():
        session.submit_labels(subspace, oracle.label_subspace(subspace,
                                                              tuples))
    persist.save_session(tmp_path / "sess", session)
    resumed = persist.load_session(tmp_path / "sess", lte)

    assert np.array_equal(session.predict(eval_rows),
                          resumed.predict(eval_rows))
    result_live = score_session(session, oracle, eval_rows)
    result_resumed = score_session(resumed, oracle, eval_rows)
    assert result_live.f1 == result_resumed.f1
    assert result_live.labels_used == result_resumed.labels_used

    # Continue with an extra labelled round on both; still bit-identical.
    subspace = persist_subspaces[0]
    state = lte.states[subspace]
    tuples = state.to_raw(state.data[5:9])
    labels = oracle.label_subspace(subspace, tuples)
    session.add_labels(subspace, tuples, labels)
    resumed.add_labels(subspace, tuples, labels)
    assert np.array_equal(session.predict(eval_rows),
                          resumed.predict(eval_rows))


def test_restore_against_reloaded_pretrained_lte(tmp_path, persist_table,
                                                 persist_config,
                                                 persist_subspaces,
                                                 persist_lte, make_oracle,
                                                 eval_rows):
    """The full restart story: pretrained artifact + serving snapshot
    restored into a *separately prepared* LTE give identical serving."""
    from repro.core import LTE

    oracle = make_oracle(400)
    manager = SessionManager(persist_lte)
    sid = manager.open_session(variant="meta_star",
                               subspaces=persist_subspaces, seed=4)
    _label_initial(manager, sid, oracle)
    manager.flush()
    expected = manager.predict(sid, eval_rows)
    persist.save_pretrained(tmp_path / "lte", persist_lte)
    persist.save_manager(tmp_path / "serving", manager)

    # "New process": prepare offline artifacts cheaply, restore weights.
    lte2 = LTE(persist_config)
    lte2.fit_offline(persist_table, subspaces=persist_subspaces,
                     train=False)
    persist.load_pretrained(tmp_path / "lte", lte2)
    manager2 = persist.load_manager(tmp_path / "serving", lte2)
    assert np.array_equal(manager2.predict(sid, eval_rows), expected)
    # Rows never predicted before the snapshot force the restored weights
    # (not just the restored cache) through the full serving path.
    fresh_rows = persist_lte.table.sample_rows(120, seed=91)
    assert np.array_equal(manager2.predict(sid, fresh_rows),
                          manager.predict(sid, fresh_rows))
