"""Corruption & forward-compat: every bad checkpoint fails loudly.

A truncated archive, a digest mismatch and an unknown schema version must
each raise the typed :class:`~repro.persist.CheckpointError` with an
actionable message — a silent wrong-weights load is the one failure mode
this subsystem may never have.
"""

import json
import os

import numpy as np
import pytest

from repro.persist import (CheckpointError, SCHEMA_VERSION,
                           inspect_checkpoint, load_checkpoint,
                           save_checkpoint)


@pytest.fixture()
def checkpoint(tmp_path):
    path = tmp_path / "ck"
    state = {"weights": np.arange(12, dtype=np.float64).reshape(3, 4),
             "step": 7, "name": "unit"}
    save_checkpoint(path, "unit-test", state, meta={"origin": "test"})
    return path


pytestmark = pytest.mark.smoke


def test_clean_checkpoint_loads(checkpoint):
    state, info = load_checkpoint(checkpoint, expected_kind="unit-test")
    assert state["step"] == 7
    assert info["meta"] == {"origin": "test"}
    summary = inspect_checkpoint(checkpoint)
    assert summary["digest_ok"]
    assert summary["error"] is None


def test_truncated_npz_raises(checkpoint):
    arrays = checkpoint / "arrays.npz"
    payload = arrays.read_bytes()
    arrays.write_bytes(payload[:len(payload) // 2])
    with pytest.raises(CheckpointError,
                       match="missing, truncated or corrupt"):
        load_checkpoint(checkpoint)
    assert not inspect_checkpoint(checkpoint)["digest_ok"]


def test_missing_npz_raises(checkpoint):
    os.remove(checkpoint / "arrays.npz")
    with pytest.raises(CheckpointError, match="cannot be read"):
        load_checkpoint(checkpoint)


def test_digest_mismatch_raises(checkpoint):
    # Rewrite the archive with one tampered value: structurally valid,
    # but the contents no longer match the manifest digest.
    with np.load(checkpoint / "arrays.npz") as npz:
        arrays = {name: npz[name].copy() for name in npz.files}
    first = sorted(arrays)[0]
    arrays[first].flat[0] += 1
    np.savez(checkpoint / "arrays.npz", **arrays)
    with pytest.raises(CheckpointError, match="digest mismatch"):
        load_checkpoint(checkpoint)
    summary = inspect_checkpoint(checkpoint)
    assert not summary["digest_ok"]
    assert "digest mismatch" in summary["error"]


def test_unknown_schema_version_raises(checkpoint):
    manifest_path = checkpoint / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["schema_version"] = SCHEMA_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="schema version"):
        load_checkpoint(checkpoint)
    with pytest.raises(CheckpointError, match="upgrade repro"):
        inspect_checkpoint(checkpoint)


def test_corrupt_manifest_raises(checkpoint):
    (checkpoint / "manifest.json").write_text("{not json")
    with pytest.raises(CheckpointError, match="not valid JSON"):
        load_checkpoint(checkpoint)


def test_missing_kind_field_raises(checkpoint):
    manifest_path = checkpoint / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["kind"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="no valid 'kind'"):
        load_checkpoint(checkpoint)
    with pytest.raises(CheckpointError, match="no valid 'kind'"):
        inspect_checkpoint(checkpoint)


def test_missing_checkpoint_raises(tmp_path):
    with pytest.raises(CheckpointError, match="manifest.json is missing"):
        load_checkpoint(tmp_path / "nowhere")


def test_wrong_kind_raises(checkpoint):
    with pytest.raises(CheckpointError, match="wrong artifact"):
        load_checkpoint(checkpoint, expected_kind="session-manager")


def test_unsupported_state_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="object-dtype"):
        save_checkpoint(tmp_path / "ck", "bad",
                        {"a": np.array([object()])})
    with pytest.raises(CheckpointError, match="keys must be strings"):
        save_checkpoint(tmp_path / "ck", "bad", {1: "x"})
    with pytest.raises(CheckpointError, match="reserved"):
        save_checkpoint(tmp_path / "ck", "bad", {"__array__": "x"})
    with pytest.raises(CheckpointError, match="unsupported type"):
        save_checkpoint(tmp_path / "ck", "bad", {"f": lambda: None})


def test_dangling_array_reference_raises(checkpoint):
    manifest_path = checkpoint / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    # Re-point the weights leaf at an array the archive does not hold,
    # recomputing nothing: the digest check fires first by design, so
    # rewrite digest too to reach the decode layer.
    from repro.persist.checkpoint import _digest
    manifest["tree"]["weights"]["__array__"] = "a999"
    with np.load(checkpoint / "arrays.npz") as npz:
        arrays = {name: npz[name].copy() for name in npz.files}
    manifest["digest"] = _digest(manifest["kind"], manifest["tree"], arrays)
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="incomplete"):
        load_checkpoint(checkpoint)


def test_cli_reports_corruption(tmp_path, capsys):
    from repro.persist.cli import main
    assert main(["inspect", str(tmp_path / "nowhere")]) == 2
    err = capsys.readouterr().err
    assert "manifest.json is missing" in err


def test_save_leaves_no_temp_files(checkpoint):
    """Write-then-rename: only the two canonical files remain."""
    assert sorted(os.listdir(checkpoint)) == ["arrays.npz", "manifest.json"]


def test_overwrite_keeps_checkpoint_loadable(checkpoint):
    save_checkpoint(checkpoint, "unit-test", {"step": 8})
    state, _ = load_checkpoint(checkpoint, expected_kind="unit-test")
    assert state["step"] == 8
    assert sorted(os.listdir(checkpoint)) == ["arrays.npz", "manifest.json"]


# ----------------------------------------------------------------------
# Mismatched targets: wrong-system restores fail with CheckpointError too
# ----------------------------------------------------------------------
def test_mismatched_fingerprint_raises(tmp_path, persist_lte, persist_table,
                                       persist_config, persist_subspaces):
    import dataclasses

    from repro import persist
    from repro.core import LTE

    persist.save_pretrained(tmp_path / "pre", persist_lte)
    other = dataclasses.replace(persist_config,
                                seed=persist_config.seed + 1)
    lte2 = LTE(other)
    lte2.fit_offline(persist_table, subspaces=persist_subspaces,
                     train=False)
    with pytest.raises(CheckpointError, match="pretrained under config"):
        persist.load_pretrained(tmp_path / "pre", lte2)


def test_session_restore_against_wrong_lte_raises(tmp_path, persist_lte,
                                                  persist_table,
                                                  persist_config,
                                                  persist_subspaces,
                                                  make_oracle):
    from repro import persist
    from repro.core import LTE
    from repro.serve import SessionManager

    oracle = make_oracle(600)
    manager = SessionManager(persist_lte)
    sid = manager.open_session(variant="meta", subspaces=persist_subspaces,
                               seed=1)
    for subspace, tuples in manager.initial_tuples(sid).items():
        manager.submit_labels(sid, subspace,
                              oracle.label_subspace(subspace, tuples))
    manager.flush()
    persist.save_session(tmp_path / "sess", manager.session(sid))
    persist.save_manager(tmp_path / "serving", manager)

    narrow = LTE(persist_config)   # prepared over a smaller decomposition
    narrow.fit_offline(persist_table, subspaces=persist_subspaces[:1],
                       train=False)
    with pytest.raises(CheckpointError, match="does not fit"):
        persist.load_session(tmp_path / "sess", narrow)
    with pytest.raises(CheckpointError, match="does not fit"):
        persist.load_manager(tmp_path / "serving", narrow)

    # A same-shape system over a *different table* must also fail loudly:
    # restored models paired with foreign scalers/encoders would silently
    # serve garbage.
    from repro.data import make_car
    other_table = make_car(n_rows=1500, seed=999)
    foreign = LTE(persist_config)
    foreign.fit_offline(other_table, subspaces=persist_subspaces,
                        train=False)
    with pytest.raises(CheckpointError, match="captured over"):
        persist.load_manager(tmp_path / "serving", foreign)
    with pytest.raises(CheckpointError, match="captured over"):
        persist.load_session(tmp_path / "sess", foreign)
