"""Kill-and-resume parity of epoch-granular pretraining checkpoints.

``fit_offline(checkpoint=dir)`` writes a ``pretrain-run`` checkpoint
(trainer weights, memories, pretrain-Adam moments, RNG state,
per-subspace epoch cursors) after every epoch.  Killing the run at any
epoch and re-invoking ``fit_offline`` against the same directory must
finish the run and converge to the *identical* phi — bit for bit — and
hence to bit-identical online sessions for every variant.
"""

import numpy as np
import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.persist import CheckpointError, inspect_checkpoint

pytestmark = pytest.mark.train


def resume_config(**meta_overrides):
    meta = dict(epochs=3, local_steps=2, batch_size=3, pretrain_epochs=2)
    meta.update(meta_overrides)
    return LTEConfig(budget=20, ku=20, kq=25, n_tasks=5,
                     meta=MetaHyperParams(**meta),
                     basic_steps=10, online_steps=3)


class _Killed(Exception):
    pass


def _fit_killed_after(table, subspaces, checkpoint, kill_epoch,
                      kill_phase="epoch", kill_count=None, **fit_kwargs):
    """fit_offline that dies once ``kill_count`` subspaces (default:
    all) finished ``kill_epoch`` of ``kill_phase`` ("pretrain" or
    "epoch" = the meta loop).  ``kill_count < len(subspaces)`` kills
    *mid-tick* — after one fusion group's ordered reduction but before
    the epoch's checkpoint barrier."""
    finished = set()
    target = len(subspaces) if kill_count is None else kill_count

    def progress(subspace, stage):
        if isinstance(stage, tuple) and stage[0] == kill_phase \
                and stage[1] == kill_epoch:
            finished.add(subspace)
            if len(finished) == target:
                raise _Killed()

    lte = LTE(resume_config())
    with pytest.raises(_Killed):
        lte.fit_offline(table, subspaces=subspaces, progress=progress,
                        checkpoint=str(checkpoint), **fit_kwargs)


def assert_identical_trainers(a, b):
    for subspace in a.states:
        ta, tb = a.states[subspace].trainer, b.states[subspace].trainer
        assert np.array_equal(ta.model.flat_parameters(),
                              tb.model.flat_parameters()), subspace
        assert ta.history == tb.history
        if ta.memories is not None:
            sa, sb = ta.memories.state_dict(), tb.memories.state_dict()
            for key in ("M_vR", "M_R", "M_CP"):
                assert np.array_equal(sa[key], sb[key])


@pytest.fixture(scope="module")
def uninterrupted(persist_table, persist_subspaces):
    lte = LTE(resume_config())
    lte.fit_offline(persist_table, subspaces=persist_subspaces)
    return lte


# killing at pretrain epoch 1 resumes from a mid-pretrain checkpoint
# (cursor 1/2, carried Adam moments); the meta-phase kills resume from a
# mid-meta checkpoint.  Epoch 0 of the first phase has no prior
# checkpoint yet — that path is plain cold-start and needs no case here.
@pytest.mark.parametrize("kill_phase,kill_epoch",
                         [("pretrain", 1), ("epoch", 0), ("epoch", 1)])
def test_kill_and_resume_is_bit_identical(tmp_path, persist_table,
                                          persist_subspaces, uninterrupted,
                                          kill_phase, kill_epoch):
    checkpoint = tmp_path / "pretrain"
    _fit_killed_after(persist_table, persist_subspaces, checkpoint,
                      kill_epoch, kill_phase=kill_phase)
    summary = inspect_checkpoint(str(checkpoint))
    assert summary["kind"] == "pretrain-run"
    assert summary["digest_ok"]
    cursors = summary["meta"]["epoch_cursor"]
    assert len(cursors) == len(persist_subspaces)

    resumed = LTE(resume_config())
    resumed.fit_offline(persist_table, subspaces=persist_subspaces,
                        checkpoint=str(checkpoint))
    assert_identical_trainers(uninterrupted, resumed)
    # the finished run's checkpoint records completed cursors
    done = inspect_checkpoint(str(checkpoint))["meta"]["epoch_cursor"]
    for cursor in done.values():
        assert cursor["pretrain"] == "2/2"
        assert cursor["meta"] == "3/3"


@pytest.mark.parametrize("variant", ["basic", "meta", "meta_star"])
def test_resumed_sessions_match_uninterrupted(tmp_path, persist_table,
                                              persist_subspaces,
                                              uninterrupted, variant):
    from repro.bench import subspace_region
    from repro.explore import ConjunctiveOracle, run_lte_exploration

    checkpoint = tmp_path / "pretrain"
    _fit_killed_after(persist_table, persist_subspaces, checkpoint, 0)
    resumed = LTE(resume_config())
    resumed.fit_offline(persist_table, subspaces=persist_subspaces,
                        checkpoint=str(checkpoint))

    eval_rows = persist_table.sample_rows(200, seed=5)
    results = []
    for lte in (uninterrupted, resumed):
        oracle = ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(1, 8), seed=23 + i)
            for i, s in enumerate(persist_subspaces)})
        results.append(run_lte_exploration(lte, oracle, eval_rows,
                                           variant=variant,
                                           subspaces=persist_subspaces))
    assert results[0].f1 == results[1].f1
    assert np.array_equal(results[0].predictions, results[1].predictions)


def test_finished_checkpoint_resumes_instantly(tmp_path, persist_table,
                                               persist_subspaces,
                                               uninterrupted):
    checkpoint = tmp_path / "pretrain"
    first = LTE(resume_config())
    first.fit_offline(persist_table, subspaces=persist_subspaces,
                      checkpoint=str(checkpoint))
    again = LTE(resume_config())
    again.fit_offline(persist_table, subspaces=persist_subspaces,
                      checkpoint=str(checkpoint))
    assert_identical_trainers(uninterrupted, again)


def test_resume_rejects_changed_epoch_plan(tmp_path, persist_table,
                                           persist_subspaces):
    checkpoint = tmp_path / "pretrain"
    _fit_killed_after(persist_table, persist_subspaces, checkpoint, 0)
    changed = LTE(resume_config(epochs=5))
    with pytest.raises(CheckpointError):
        changed.fit_offline(persist_table, subspaces=persist_subspaces,
                            checkpoint=str(checkpoint))


def test_resume_rejects_foreign_system(tmp_path, persist_table,
                                       persist_subspaces):
    from repro.data import make_car

    checkpoint = tmp_path / "pretrain"
    _fit_killed_after(persist_table, persist_subspaces, checkpoint, 0)
    other_table = make_car(n_rows=1400, seed=99)
    foreign = LTE(resume_config())
    with pytest.raises(CheckpointError):
        foreign.fit_offline(other_table, checkpoint=str(checkpoint))


# ----------------------------------------------------------------------
# Cross-engine resume interchange (parallel <-> single-process)
# ----------------------------------------------------------------------
# Checkpoints are written only after each epoch's reduction barrier, at
# which point every engine (any worker count) has passed through
# identical master state — so a run killed under one engine must resume
# to the identical phi under any other.

@pytest.mark.train_parallel
@pytest.mark.parametrize("kill_phase,kill_epoch",
                         [("pretrain", 1), ("epoch", 1)])
def test_parallel_kill_resumes_under_batched(tmp_path, persist_table,
                                             persist_subspaces,
                                             uninterrupted, kill_phase,
                                             kill_epoch):
    checkpoint = tmp_path / "pretrain"
    _fit_killed_after(persist_table, persist_subspaces, checkpoint,
                      kill_epoch, kill_phase=kill_phase,
                      engine="parallel", workers=2)
    summary = inspect_checkpoint(str(checkpoint))
    assert summary["kind"] == "pretrain-run"
    assert summary["digest_ok"]
    resumed = LTE(resume_config())
    resumed.fit_offline(persist_table, subspaces=persist_subspaces,
                        checkpoint=str(checkpoint))
    assert_identical_trainers(uninterrupted, resumed)


@pytest.mark.train_parallel
@pytest.mark.parametrize("workers", [1, 3])
def test_batched_kill_resumes_under_parallel(tmp_path, persist_table,
                                             persist_subspaces,
                                             uninterrupted, workers):
    checkpoint = tmp_path / "pretrain"
    _fit_killed_after(persist_table, persist_subspaces, checkpoint, 0)
    resumed = LTE(resume_config())
    resumed.fit_offline(persist_table, subspaces=persist_subspaces,
                        checkpoint=str(checkpoint), engine="parallel",
                        workers=workers)
    assert_identical_trainers(uninterrupted, resumed)


@pytest.mark.train_parallel
def test_mid_reduction_kill_resumes_identically(tmp_path, persist_table,
                                                persist_subspaces,
                                                uninterrupted):
    """Killed after one fusion group's ordered reduction but before the
    epoch's checkpoint barrier: the half-finished tick is discarded and
    the resume replays it from the last barrier, bit-identically, under
    a different worker count."""
    checkpoint = tmp_path / "pretrain"
    _fit_killed_after(persist_table, persist_subspaces, checkpoint, 1,
                      kill_count=1, engine="parallel", workers=2)
    resumed = LTE(resume_config())
    resumed.fit_offline(persist_table, subspaces=persist_subspaces,
                        checkpoint=str(checkpoint), engine="parallel",
                        workers=3)
    assert_identical_trainers(uninterrupted, resumed)


@pytest.mark.train_parallel
def test_checkpoint_meta_records_engine_provenance(tmp_path, persist_table,
                                                   persist_subspaces):
    checkpoint = tmp_path / "pretrain"
    lte = LTE(resume_config())
    lte.fit_offline(persist_table, subspaces=persist_subspaces,
                    checkpoint=str(checkpoint), engine="parallel",
                    workers=2)
    meta = inspect_checkpoint(str(checkpoint))["meta"]
    assert meta["engine"] == "parallel"
    assert meta["workers"] == 2
    assert meta["nn_backend"]
