"""Round-trip property tests: ``load(save(x))`` is the identity.

Three layers of the guarantee:

* the raw checkpoint codec reproduces arbitrary nested states with exact
  arrays, dtypes and scalar types across ~50 fuzzed cases;
* every ``nn.Module`` subclass round-trips its ``state_dict`` through a
  checkpoint file bit-for-bit, and the restored module computes an
  identical forward pass;
* the optimizers (Adam step counts + moment buffers, SGD velocity)
  resume mid-training bit-identically to never having been serialized.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import UISClassifier
from repro.nn.functional import binary_cross_entropy_with_logits
from repro.persist import load_checkpoint, save_checkpoint

DTYPES = [np.float64, np.float32, np.int64, np.int32, np.int8, np.uint8,
          np.bool_]
SHAPES = [(), (1,), (7,), (3, 4), (2, 3, 5), (1, 1, 2, 2), (0, 4)]


def _random_array(rng):
    dtype = DTYPES[rng.integers(len(DTYPES))]
    shape = SHAPES[rng.integers(len(SHAPES))]
    if dtype == np.bool_:
        return rng.integers(0, 2, size=shape).astype(bool)
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        return rng.integers(info.min, int(info.max) + 1,
                            size=shape).astype(dtype)
    return rng.normal(size=shape).astype(dtype)


def _random_tree(rng, depth=0):
    roll = rng.random()
    if depth >= 3 or roll < 0.45:
        leaf = rng.integers(6)
        return [_random_array(rng), int(rng.integers(-1000, 1000)),
                float(rng.normal()), bool(rng.integers(2)),
                "s{}".format(rng.integers(100)), None][leaf]
    if roll < 0.65:
        return {"k{}".format(i): _random_tree(rng, depth + 1)
                for i in range(rng.integers(1, 4))}
    if roll < 0.85:
        return [_random_tree(rng, depth + 1)
                for _ in range(rng.integers(0, 4))]
    return tuple(_random_tree(rng, depth + 1)
                 for _ in range(rng.integers(1, 3)))


def _assert_identical(a, b):
    assert type(a) is type(b), (type(a), type(b))
    if isinstance(a, dict):
        assert sorted(a) == sorted(b)
        for key in a:
            _assert_identical(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _assert_identical(x, y)
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        assert np.array_equal(a, b)
    else:
        assert a == b or (isinstance(a, float) and np.isnan(a)
                          and np.isnan(b))


@pytest.mark.parametrize("seed", range(50))
def test_fuzzed_tree_roundtrip(tmp_path, seed):
    """~50 randomized nested states: arrays, dtypes and scalars survive."""
    rng = np.random.default_rng(seed)
    state = {"tree": _random_tree(rng), "arrays":
             [_random_array(rng) for _ in range(rng.integers(1, 5))]}
    save_checkpoint(tmp_path / "ck", "fuzz", state)
    loaded, info = load_checkpoint(tmp_path / "ck", expected_kind="fuzz")
    assert info["kind"] == "fuzz"
    _assert_identical(state, loaded)


@pytest.mark.smoke
def test_scalar_type_preservation(tmp_path):
    """ints stay ints, floats floats, bools bools, None None."""
    state = {"i": 3, "f": 2.5, "b": True, "n": None, "s": "x",
             "t": (1, "two", None), "nested": {"inf": float("inf")}}
    save_checkpoint(tmp_path / "ck", "scalars", state)
    loaded, _ = load_checkpoint(tmp_path / "ck")
    _assert_identical(state, loaded)


# ----------------------------------------------------------------------
# nn.Module subclasses
# ----------------------------------------------------------------------
def _module_cases(rng):
    return {
        "linear": nn.Linear(5, 3, rng=rng),
        "linear_nobias": nn.Linear(4, 2, rng=rng, bias=False),
        "sequential": nn.Sequential(nn.Linear(6, 4, rng=rng), nn.ReLU(),
                                    nn.Linear(4, 1, rng=rng)),
        "mlp": nn.MLP([5, 8, 3], rng=rng, final_activation=nn.Sigmoid()),
        "batched_linear": nn.BatchedLinear(3, 4, 2, rng=rng),
        "uis_classifier": UISClassifier(ku=6, input_width=5, embed_size=4,
                                        hidden_size=3, seed=11),
    }


def _fresh_twin(name, rng):
    return _module_cases(rng)[name]


@pytest.mark.parametrize("name", sorted(_module_cases(
    np.random.default_rng(0))))
def test_module_state_roundtrip(tmp_path, name):
    rng = np.random.default_rng(3)
    module = _module_cases(rng)[name]
    save_checkpoint(tmp_path / "ck", "module", module.state_dict())
    loaded, _ = load_checkpoint(tmp_path / "ck", expected_kind="module")
    twin = _fresh_twin(name, np.random.default_rng(99))
    twin.load_state_dict(loaded)
    for (key, param), (tkey, tparam) in zip(module.named_parameters(),
                                            twin.named_parameters()):
        assert key == tkey
        assert param.data.dtype == tparam.data.dtype
        assert np.array_equal(param.data, tparam.data)
    # Forward parity on a random input of the right shape.
    x_rng = np.random.default_rng(5)
    if name == "uis_classifier":
        v_r = x_rng.normal(size=6)
        x = x_rng.normal(size=(7, 5))
        assert np.array_equal(module.predict_proba(v_r, x),
                              twin.predict_proba(v_r, x))
    else:
        width = {"linear": 5, "linear_nobias": 4, "sequential": 6,
                 "mlp": 5}.get(name)
        x = x_rng.normal(size=(3, 2, 4)) if name == "batched_linear" \
            else x_rng.normal(size=(7, width))
        with nn.no_grad():
            assert np.array_equal(module(x).numpy(), twin(x).numpy())


def test_parameter_state_roundtrip(tmp_path):
    from repro.nn.tensor import Parameter
    param = Parameter(np.random.default_rng(0).normal(size=(3, 2)))
    save_checkpoint(tmp_path / "ck", "param", {"p": param.state_dict()})
    loaded, _ = load_checkpoint(tmp_path / "ck")
    twin = Parameter(np.zeros((3, 2)))
    twin.load_state_dict(loaded["p"])
    assert np.array_equal(param.data, twin.data)
    assert twin.requires_grad


def test_module_fuzzed_mlp_roundtrip(tmp_path):
    """Fuzz MLP widths/depths: every layout survives the file format."""
    rng = np.random.default_rng(7)
    for case in range(10):
        sizes = [int(rng.integers(1, 9))
                 for _ in range(int(rng.integers(2, 5)))]
        module = nn.MLP(sizes, rng=rng)
        path = tmp_path / "ck{}".format(case)
        save_checkpoint(path, "module", module.state_dict())
        loaded, _ = load_checkpoint(path)
        twin = nn.MLP(sizes, rng=np.random.default_rng(1234))
        twin.load_state_dict(loaded)
        x = rng.normal(size=(4, sizes[0]))
        with nn.no_grad():
            assert np.array_equal(module(x).numpy(), twin(x).numpy())


# ----------------------------------------------------------------------
# Optimizers: resume == never interrupted
# ----------------------------------------------------------------------
def _train_steps(model, optimizer, x, y, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = binary_cross_entropy_with_logits(model(x).reshape(-1), y)
        loss.backward()
        optimizer.step()


@pytest.mark.parametrize("kind", ["adam", "sgd"])
def test_optimizer_resume_bit_identical(tmp_path, kind):
    rng = np.random.default_rng(13)
    x = rng.normal(size=(16, 5))
    y = rng.integers(0, 2, size=16).astype(np.float64)

    def build():
        model = nn.MLP([5, 6, 1], rng=np.random.default_rng(3))
        optimizer = nn.Adam(model.parameters(), lr=0.05) if kind == "adam" \
            else nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
        return model, optimizer

    # Uninterrupted: 3 + 4 steps straight through.
    model_a, opt_a = build()
    _train_steps(model_a, opt_a, x, y, 3)
    save_checkpoint(tmp_path / "ck", "train-state",
                    {"model": model_a.state_dict(),
                     "optimizer": opt_a.state_dict()})
    _train_steps(model_a, opt_a, x, y, 4)

    # Interrupted: restore the step-3 checkpoint into fresh objects.
    model_b, opt_b = build()
    state, _ = load_checkpoint(tmp_path / "ck", expected_kind="train-state")
    model_b.load_state_dict(state["model"])
    opt_b.load_state_dict(state["optimizer"])
    if kind == "adam":
        assert opt_b._step == 3
        for m_a, m_b in zip(opt_a._m, opt_b._m):  # moments at step 3 differ
            assert m_a.shape == m_b.shape         # from step 7's — shapes do
    _train_steps(model_b, opt_b, x, y, 4)

    for (name, p_a), (_, p_b) in zip(model_a.named_parameters(),
                                     model_b.named_parameters()):
        assert np.array_equal(p_a.data, p_b.data), name
    if kind == "adam":
        assert opt_a._step == opt_b._step == 7
        for m_a, m_b in zip(opt_a._m, opt_b._m):
            assert np.array_equal(m_a, m_b)
        for v_a, v_b in zip(opt_a._v, opt_b._v):
            assert np.array_equal(v_a, v_b)


def test_optimizer_state_validation():
    model = nn.MLP([3, 2], rng=np.random.default_rng(0))
    adam = nn.Adam(model.parameters(), lr=0.01)
    sgd = nn.SGD(model.parameters(), lr=0.01)
    with pytest.raises(ValueError, match="optimizer state is for"):
        sgd.load_state_dict(adam.state_dict())
    bad = adam.state_dict()
    bad["m"] = bad["m"][:-1]
    with pytest.raises(ValueError, match="buffers"):
        adam.load_state_dict(bad)


# ----------------------------------------------------------------------
# MetaTrainer artifact (save/load on the meta-learner itself)
# ----------------------------------------------------------------------
def test_meta_trainer_save_load(tmp_path, persist_lte, persist_subspaces):
    from repro.core import MetaTrainer
    trainer = persist_lte.states[persist_subspaces[0]].trainer
    trainer.save(tmp_path / "trainer", meta={"note": "unit test"})
    restored = MetaTrainer.load(tmp_path / "trainer")
    assert restored.use_memories == trainer.use_memories
    assert restored.history == trainer.history
    for (name, p), (_, q) in zip(trainer.model.named_parameters(),
                                 restored.model.named_parameters()):
        assert np.array_equal(p.data, q.data), name
    if trainer.memories is not None:
        for key, value in trainer.memories.state_dict().items():
            assert np.array_equal(value,
                                  restored.memories.state_dict()[key])
    # A restored trainer adapts bit-identically.
    rng = np.random.default_rng(2)
    v_r = rng.normal(size=trainer.model.ku)
    sx = rng.normal(size=(8, trainer.model.input_width))
    sy = rng.integers(0, 2, size=8).astype(np.float64)
    a1, _ = trainer.adapt(v_r, sx, sy)
    a2, _ = restored.adapt(v_r, sx, sy)
    qx = rng.normal(size=(20, trainer.model.input_width))
    assert np.array_equal(a1.predict_proba(qx), a2.predict_proba(qx))
