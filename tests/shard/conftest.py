"""Shared fixtures for the sharded-serving tests.

One tiny trained LTE per test session (workers fork from it and
warm-start from the gateway's checkpoint) plus a ground-truth oracle
factory; the phi-perturbation and session-feeding helpers live in
``_helpers.py``.
"""

import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_car


@pytest.fixture(scope="session")
def shard_lte():
    table = make_car(n_rows=1500, seed=41)
    lte = LTE(LTEConfig(budget=20, ku=25, kq=30, n_tasks=6,
                        meta=MetaHyperParams(epochs=1, local_steps=2,
                                             batch_size=3,
                                             pretrain_epochs=1),
                        basic_steps=15, online_steps=4))
    lte.fit_offline(table)
    return lte


@pytest.fixture(scope="session")
def shard_subspaces(shard_lte):
    return list(shard_lte.states)[:2]


@pytest.fixture(scope="session")
def make_oracle(shard_lte, shard_subspaces):
    """Factory: a distinct conjunctive ground-truth oracle per seed."""
    from repro.bench import subspace_region
    from repro.explore import ConjunctiveOracle

    def factory(seed, subspaces=None):
        subspaces = subspaces or shard_subspaces
        return ConjunctiveOracle({
            s: subspace_region(shard_lte.states[s], UISMode(1, 10),
                               seed=seed + i)
            for i, s in enumerate(subspaces)})

    return factory


@pytest.fixture()
def eval_rows(shard_lte):
    return shard_lte.table.sample_rows(200, seed=5)
