"""Model-version broadcast: rolling phi updates without dropping work."""

import numpy as np
import pytest
from _helpers import feed_session, perturb_phi

from repro.persist import load_pretrained, model_fingerprint, save_pretrained
from repro.serve import SessionManager
from repro.shard import ShardGateway

pytestmark = pytest.mark.shard


class TestBroadcast:
    def test_rolls_without_dropping_sessions(self, shard_lte,
                                             shard_subspaces, make_oracle,
                                             eval_rows):
        """Live, already-adapted sessions survive the broadcast and keep
        serving their (unchanged) adapted models bit-identically."""
        oracle = make_oracle(29)
        retrained = perturb_phi(shard_lte)
        with ShardGateway(shard_lte, n_workers=2) as gateway:
            old_version = gateway.model_version
            sids = [gateway.open_session(subspaces=shard_subspaces, seed=i)
                    for i in range(4)]
            for sid in sids:
                feed_session(gateway, oracle, sid)
            gateway.flush_all()
            before = gateway.predict_many(sids, eval_rows)

            new_version = gateway.publish_model(retrained)
            assert new_version == model_fingerprint(retrained)
            assert new_version != old_version
            assert gateway.model_version == new_version
            stats = gateway.stats()
            assert all(w["model"] == new_version
                       for w in stats["workers"])

            # Every session is still live; adapted models were trained
            # before the broadcast, so their predictions are unchanged.
            after = gateway.predict_many(sids, eval_rows)
            for sid in sids:
                assert gateway.poll(sid)["errors"] == []
                assert np.array_equal(after[sid], before[sid])

    def test_queued_work_drains_under_old_model(self, shard_lte,
                                                shard_subspaces,
                                                make_oracle):
        """Batches submitted before the broadcast adapt (under the old
        model) rather than being dropped by the roll."""
        oracle = make_oracle(37)
        with ShardGateway(shard_lte, n_workers=2) as gateway:
            sids = [gateway.open_session(subspaces=shard_subspaces, seed=i)
                    for i in range(3)]
            for sid in sids:
                feed_session(gateway, oracle, sid)     # queued, unflushed
            gateway.publish_model(perturb_phi(shard_lte))
            for sid in sids:
                result = gateway.poll(sid, advance=False)
                assert result["pending"] == []
                assert len(result["ready"]) == 2
                assert result["errors"] == []

    def test_post_broadcast_parity_with_fresh_manager(self, shard_lte,
                                                      shard_subspaces,
                                                      make_oracle,
                                                      eval_rows, tmp_path):
        """Sessions adapted *after* the broadcast run under the new phi:
        bit-identical to a fresh single-process manager serving the new
        checkpoint."""
        import copy

        oracle = make_oracle(41)
        retrained = perturb_phi(shard_lte)
        save_pretrained(tmp_path / "phi-v2", retrained)

        with ShardGateway(shard_lte, n_workers=2) as gateway:
            gateway.publish_model(str(tmp_path / "phi-v2"))
            sids = [gateway.open_session(variant="meta_star",
                                         subspaces=shard_subspaces, seed=s)
                    for s in (3, 4)]
            for sid in sids:
                feed_session(gateway, oracle, sid)
            gateway.flush_all()
            sharded = gateway.predict_many(sids, eval_rows)

        reference_lte = copy.deepcopy(shard_lte)
        load_pretrained(tmp_path / "phi-v2", reference_lte)
        manager = SessionManager(reference_lte)
        ref_sids = [manager.open_session(variant="meta_star",
                                         subspaces=shard_subspaces, seed=s)
                    for s in (3, 4)]
        for sid in ref_sids:
            for subspace, tuples in manager.initial_tuples(sid).items():
                manager.submit_labels(
                    sid, subspace, oracle.label_subspace(subspace, tuples))
        manager.flush()
        reference = manager.predict_many(ref_sids, eval_rows)
        for sid, ref_sid in zip(sids, ref_sids):
            assert np.array_equal(sharded[sid], reference[ref_sid])

    def test_replicas_warm_start_to_published_fingerprint(self, shard_lte):
        with ShardGateway(shard_lte, n_workers=2) as gateway:
            assert gateway.model_version == model_fingerprint(shard_lte)
            stats = gateway.stats()
            assert all(w["model"] == gateway.model_version
                       for w in stats["workers"])
