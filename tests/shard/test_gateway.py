"""Gateway behavior: routing, parity, backpressure, crash isolation."""

import numpy as np
import pytest
from _helpers import feed_session, perturb_phi

from repro.serve import SessionManager
from repro.shard import (Overloaded, ShardGateway, WorkerCrashed,
                         assign_worker, home_worker)

pytestmark = pytest.mark.shard


class TestRouting:
    def test_home_worker_is_modulo(self):
        assert [home_worker(i, 3) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_home_worker_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            home_worker(0, 0)

    def test_assign_probes_past_dead_workers(self):
        alive = [True, False, True]
        assert assign_worker(0, alive) == 0
        assert assign_worker(1, alive) == 2    # home 1 dead -> probe on
        assert assign_worker(2, alive) == 2
        assert assign_worker(4, alive) == 2

    def test_assign_none_when_all_dead(self):
        assert assign_worker(7, [False, False]) is None


class TestGatewayProtocol:
    def test_sessions_spread_across_workers(self, shard_lte,
                                            shard_subspaces, make_oracle):
        with ShardGateway(shard_lte, n_workers=2) as gateway:
            sids = [gateway.open_session(subspaces=shard_subspaces, seed=i)
                    for i in range(4)]
            owners = {gateway._sessions[sid] for sid in sids}
            assert owners == {0, 1}
            oracle = make_oracle(3)
            for sid in sids:
                feed_session(gateway, oracle, sid)
            assert gateway.flush_all() > 0
            for sid in sids:
                result = gateway.poll(sid)
                assert result["pending"] == []
                assert result["errors"] == []
                assert len(result["ready"]) == 2

    def test_parity_with_single_process_manager(self, shard_lte,
                                                shard_subspaces,
                                                make_oracle, eval_rows):
        """Gateway predictions must be bit-identical to an unsharded
        SessionManager fed the same sessions, labels and seeds."""
        oracle = make_oracle(11)
        seeds = list(range(6))
        with ShardGateway(shard_lte, n_workers=2) as gateway:
            sids = [gateway.open_session(variant="meta_star",
                                         subspaces=shard_subspaces, seed=s)
                    for s in seeds]
            for sid in sids:
                feed_session(gateway, oracle, sid)
            gateway.flush_all()
            sharded = gateway.predict_many(sids, eval_rows)
            single = {sid: gateway.predict(sid, eval_rows)
                      for sid in sids}

        manager = SessionManager(shard_lte)
        ref_sids = [manager.open_session(variant="meta_star",
                                         subspaces=shard_subspaces, seed=s)
                    for s in seeds]
        for sid in ref_sids:
            for subspace, tuples in manager.initial_tuples(sid).items():
                manager.submit_labels(
                    sid, subspace, oracle.label_subspace(subspace, tuples))
        manager.flush()
        reference = manager.predict_many(ref_sids, eval_rows)

        for sid, ref_sid in zip(sids, ref_sids):
            assert np.array_equal(sharded[sid], reference[ref_sid])
            assert np.array_equal(single[sid], reference[ref_sid])

    def test_iterative_rounds_and_retrieve(self, shard_lte, shard_subspaces,
                                           make_oracle, eval_rows):
        oracle = make_oracle(5)
        subspace = shard_subspaces[0]
        state = shard_lte.states[subspace]
        with ShardGateway(shard_lte, n_workers=2) as gateway:
            sid = gateway.open_session(subspaces=[subspace], seed=1)
            feed_session(gateway, oracle, sid)
            gateway.flush_all()
            extra = state.to_raw(state.data[10:14])
            gateway.add_labels(sid, subspace, extra,
                               oracle.label_subspace(subspace, extra))
            gateway.flush_all()
            predictions = gateway.predict(sid, eval_rows)
            retrieved = gateway.retrieve(sid, rows=eval_rows)
            assert len(retrieved) == int(predictions.sum())

    def test_errors_attributed_across_sessions(self, shard_lte,
                                               shard_subspaces,
                                               make_oracle):
        """One session's bad flush stays in its own poll, even when both
        sessions share a worker."""
        oracle = make_oracle(13)
        with ShardGateway(shard_lte, n_workers=1) as gateway:
            sid_bad = gateway.open_session(subspaces=shard_subspaces,
                                           seed=0)
            sid_good = gateway.open_session(subspaces=shard_subspaces,
                                            seed=1)
            worker = gateway._workers[0]
            gateway._call(worker, "_debug",
                          {"corrupt_session":
                           worker.local_by_global[sid_bad]})
            feed_session(gateway, oracle, sid_bad)
            feed_session(gateway, oracle, sid_good)
            good = gateway.poll(sid_good)        # flushes the worker
            assert good["errors"] == []
            assert len(good["ready"]) == 2
            bad = gateway.poll(sid_bad)
            assert len(bad["errors"]) == 2       # one per subspace
            assert all("corrupt session" in e["error"]
                       for e in bad["errors"])
            assert gateway.poll(sid_bad)["errors"] == []


class TestAdmissionControl:
    def test_backpressure_rejects_before_enqueue(self, shard_lte,
                                                 shard_subspaces,
                                                 make_oracle):
        oracle = make_oracle(17)
        subspace = shard_subspaces[0]
        with ShardGateway(shard_lte, n_workers=1,
                          max_pending_per_worker=1) as gateway:
            first = gateway.open_session(subspaces=[subspace], seed=0)
            second = gateway.open_session(subspaces=[subspace], seed=1)
            tuples = gateway.initial_tuples(first)[subspace]
            labels = oracle.label_subspace(subspace, tuples)
            gateway.submit_labels(first, subspace, labels)
            with pytest.raises(Overloaded):
                gateway.submit_labels(second, subspace, labels)
            # Draining restores admission; the rejected batch was never
            # partially enqueued.
            gateway.flush_all()
            gateway.submit_labels(second, subspace, labels)
            gateway.flush_all()
            assert gateway.poll(second)["ready"] == [subspace]

    def test_session_cap(self, shard_lte):
        with ShardGateway(shard_lte, n_workers=1,
                          max_sessions_per_worker=1) as gateway:
            gateway.open_session(seed=0)
            with pytest.raises(Overloaded):
                gateway.open_session(seed=1)


class TestCrashIsolation:
    def test_worker_crash_mid_flush(self, shard_lte, shard_subspaces,
                                    make_oracle):
        """A worker dying mid-flush raises a typed error promptly (no
        hang); survivors keep serving and new sessions re-route."""
        oracle = make_oracle(19)
        with ShardGateway(shard_lte, n_workers=2) as gateway:
            sids = [gateway.open_session(subspaces=shard_subspaces, seed=i)
                    for i in range(4)]
            doomed = gateway._workers[0]
            victims = [s for s in sids if gateway._sessions[s] == 0]
            survivors = [s for s in sids if gateway._sessions[s] == 1]
            for sid in sids:
                feed_session(gateway, oracle, sid)
            gateway._call(doomed, "_debug", {"crash_on_flush": True})
            with pytest.raises(WorkerCrashed):
                gateway.flush_all()
            assert not doomed.alive
            # Sessions that lived on the dead worker fail typed…
            with pytest.raises(WorkerCrashed):
                gateway.poll(victims[0])
            # …survivors are untouched…
            gateway.flush_all()
            for sid in survivors:
                assert len(gateway.poll(sid)["ready"]) == 2
            # …and new sessions re-route onto the live worker.
            fresh = gateway.open_session(subspaces=shard_subspaces, seed=9)
            assert gateway._sessions[fresh] == 1
            feed_session(gateway, oracle, fresh)
            gateway.flush_all()
            assert len(gateway.poll(fresh)["ready"]) == 2

    def test_all_workers_dead_rejects_new_sessions(self, shard_lte):
        with ShardGateway(shard_lte, n_workers=1) as gateway:
            gateway._call(gateway._workers[0], "_debug",
                          {"crash_on_flush": True})
            with pytest.raises(WorkerCrashed):
                gateway.flush_all()
            with pytest.raises(WorkerCrashed):
                gateway.open_session(seed=0)


class TestShutdown:
    def test_close_drains_and_is_idempotent(self, shard_lte,
                                            shard_subspaces, make_oracle):
        oracle = make_oracle(23)
        gateway = ShardGateway(shard_lte, n_workers=2)
        sid = gateway.open_session(subspaces=shard_subspaces, seed=0)
        feed_session(gateway, oracle, sid)
        gateway.close()                          # graceful drain
        gateway.close()                          # idempotent
        assert all(not w.process.is_alive() for w in gateway._workers)
        from repro.shard import ShardError
        with pytest.raises(ShardError, match="closed"):
            gateway.open_session(seed=1)

    def test_context_manager_cleans_up_checkpoint_root(self, shard_lte):
        import os
        with ShardGateway(shard_lte, n_workers=1) as gateway:
            root = gateway._root
            assert os.path.isdir(root)
        assert not os.path.exists(root)
