"""Helpers shared by the sharded-serving tests (imported, not fixtures)."""

import copy

import numpy as np


def perturb_phi(lte, scale=1.5, shift=0.1):
    """A deep copy of ``lte`` whose meta-learned weights differ — a
    stand-in for a re-pretrained phi with the same identity."""
    swapped = copy.deepcopy(lte)
    for state in swapped.states.values():
        if state.trainer is None:
            continue
        sd = state.trainer.state_dict()

        def twist(node):
            if isinstance(node, np.ndarray) and \
                    np.issubdtype(node.dtype, np.floating):
                return node * scale + shift
            if isinstance(node, dict):
                return {k: twist(v) for k, v in node.items()}
            if isinstance(node, list):
                return [twist(v) for v in node]
            return node

        sd["model"] = twist(sd["model"])
        state.trainer.load_state_dict(sd)
    return swapped


def feed_session(gateway, oracle, session_id):
    """Label every initial tuple of a session through the oracle."""
    for subspace, tuples in gateway.initial_tuples(session_id).items():
        gateway.submit_labels(session_id, subspace,
                              oracle.label_subspace(subspace, tuples))
