"""Public-API surface checks: imports, __all__ consistency, paper defaults."""

import importlib

import pytest

PACKAGES = ["repro", "repro.nn", "repro.ml", "repro.geometry", "repro.data",
            "repro.core", "repro.baselines", "repro.explore", "repro.bench",
            "repro.serve", "repro.persist", "repro.store", "repro.train",
            "repro.shard", "repro.obs"]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_all_resolves(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__")
    for symbol in module.__all__:
        assert hasattr(module, symbol), "{}.{} missing".format(name, symbol)


def test_top_level_exports():
    import repro
    assert repro.LTE is not None
    assert repro.LTEConfig is not None
    assert isinstance(repro.__version__, str)


def test_persist_exports():
    """The checkpoint subsystem's full public surface is importable."""
    from repro import persist
    expected = {"CheckpointError", "SCHEMA_VERSION",
                "save_checkpoint", "load_checkpoint", "inspect_checkpoint",
                "save_pretrained", "load_pretrained",
                "save_pretrain_run", "load_pretrain_run",
                "save_session", "load_session",
                "save_manager", "load_manager", "dataset_provenance",
                "model_fingerprint"}
    assert expected == set(persist.__all__)
    assert issubclass(persist.CheckpointError, RuntimeError)
    assert isinstance(persist.SCHEMA_VERSION, int)
    # The state-dict protocol reaches every stateful layer.
    from repro import nn
    from repro.core import (ExplorationSession, FewShotOptimizer,
                            HullRegistry, MetaTrainer)
    from repro.serve import SessionManager
    for cls in (nn.Module, nn.Parameter, nn.SGD, nn.Adam, MetaTrainer):
        assert hasattr(cls, "state_dict")
        assert hasattr(cls, "load_state_dict")
    for cls in (FewShotOptimizer, ExplorationSession):
        assert hasattr(cls, "state_dict")
        assert hasattr(cls, "from_state_dict")
    assert hasattr(SessionManager, "snapshot")
    assert hasattr(SessionManager, "restore")
    assert hasattr(MetaTrainer, "save")
    assert hasattr(MetaTrainer, "load")
    assert hasattr(HullRegistry, "restore")


def test_every_public_symbol_has_docstring():
    for name in PACKAGES:
        module = importlib.import_module(name)
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, "{}.{} lacks a docstring".format(
                    name, symbol)


class TestPaperDefaults:
    """The library defaults must match the paper's Section VIII-A."""

    def test_lte_config_defaults(self):
        from repro.core import LTEConfig
        config = LTEConfig()
        assert config.ku == 100
        assert config.kq == 200
        assert config.delta == 5
        assert config.budget == 30
        assert config.embed_size == 100          # Ne = 100
        assert config.task_mode.alpha == 4       # generalized training mode
        assert config.task_mode.psi == 20
        assert config.subspace_dim == 2          # 2-D subspaces

    def test_meta_hyperparams_m_range(self):
        from repro.core.meta_training import MetaHyperParams
        assert MetaHyperParams().m in (2, 4, 6)  # the paper's search grid

    def test_paper_scale_preset(self):
        from repro.bench import get_scale
        paper = get_scale("paper")
        assert paper.n_tasks == 5000             # the paper's sweet point
        assert paper.dataset_rows == 100_000     # SDSS extract size

    def test_paper_modes_complete(self):
        from repro.core.uis import PAPER_MODES
        assert [PAPER_MODES[m].psi for m in
                ("M1", "M2", "M3", "M4")] == [20, 15, 10, 5]
        assert [PAPER_MODES[m].alpha for m in
                ("M5", "M6", "M7")] == [1, 2, 3]

    def test_variants_tuple(self):
        from repro.core import VARIANTS
        assert VARIANTS == ("basic", "meta", "meta_star")
