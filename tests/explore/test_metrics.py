"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import (accuracy_score, classification_report,
                           confusion_counts, f1_score, precision_score,
                           recall_score)


class TestConfusion:
    def test_known_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        assert confusion_counts(y_true, y_pred) == (2, 1, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts([1, 0], [1])


class TestScores:
    def test_perfect_prediction(self):
        y = np.array([1, 0, 1, 0])
        assert f1_score(y, y) == 1.0
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0
        assert accuracy_score(y, y) == 1.0

    def test_all_wrong(self):
        y = np.array([1, 0])
        assert f1_score(y, 1 - y) == 0.0

    def test_known_values(self):
        y_true = np.array([1, 1, 1, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0])
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_degenerate_no_positives(self):
        zeros = np.zeros(5, dtype=int)
        assert f1_score(zeros, zeros) == 0.0
        assert precision_score(zeros, zeros) == 0.0
        assert recall_score(zeros, zeros) == 0.0
        assert accuracy_score(zeros, zeros) == 1.0

    def test_report_keys(self):
        report = classification_report([1, 0], [1, 1])
        assert set(report) == {"precision", "recall", "f1", "accuracy"}

    def test_empty_accuracy(self):
        assert accuracy_score([], []) == 0.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=30),
       st.lists(st.integers(0, 1), min_size=1, max_size=30))
def test_property_f1_is_harmonic_mean(true_bits, pred_bits):
    n = min(len(true_bits), len(pred_bits))
    y_true = np.asarray(true_bits[:n])
    y_pred = np.asarray(pred_bits[:n])
    f1 = f1_score(y_true, y_pred)
    p = precision_score(y_true, y_pred)
    r = recall_score(y_true, y_pred)
    assert 0.0 <= f1 <= 1.0
    if p + r > 0:
        assert f1 == pytest.approx(2 * p * r / (p + r))
    else:
        assert f1 == 0.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=30))
def test_property_f1_symmetric_under_identity(bits):
    y = np.asarray(bits)
    expected = 1.0 if y.any() else 0.0
    assert f1_score(y, y) == expected
