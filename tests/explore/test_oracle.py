"""Tests for labelling oracles."""

import numpy as np
import pytest

from repro.data.subspaces import Subspace
from repro.explore import ConjunctiveOracle, RegionOracle
from repro.geometry import BoxRegion


class TestRegionOracle:
    def test_labels_and_counter(self):
        oracle = RegionOracle(BoxRegion([0, 0], [1, 1]))
        labels = oracle.label(np.array([[0.5, 0.5], [2.0, 2.0]]))
        assert list(labels) == [1, 0]
        assert oracle.labels_given == 2
        oracle.reset_counter()
        assert oracle.labels_given == 0


def two_subspace_oracle():
    s_a = Subspace(["a", "b"], [0, 1])
    s_c = Subspace(["c"], [2])
    return ConjunctiveOracle({
        s_a: BoxRegion([0, 0], [1, 1]),
        s_c: BoxRegion([10], [20]),
    }), s_a, s_c


class TestConjunctiveOracle:
    def test_subspace_labels_counted(self):
        oracle, s_a, _ = two_subspace_oracle()
        labels = oracle.label_subspace(s_a, np.array([[0.5, 0.5]]))
        assert labels[0] == 1
        assert oracle.labels_given == 1

    def test_full_space_label_is_conjunction(self):
        oracle, _, _ = two_subspace_oracle()
        rows = np.array([[0.5, 0.5, 15.0], [0.5, 0.5, 5.0]])
        assert list(oracle.label(rows)) == [1, 0]

    def test_ground_truth_does_not_count(self):
        oracle, _, _ = two_subspace_oracle()
        oracle.ground_truth(np.array([[0.5, 0.5, 15.0]]))
        assert oracle.labels_given == 0

    def test_ground_truth_subspace(self):
        oracle, s_a, _ = two_subspace_oracle()
        truth = oracle.ground_truth_subspace(s_a, np.array([[0.5, 0.5]]))
        assert truth[0] == 1
        assert oracle.labels_given == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ConjunctiveOracle({})

    def test_unknown_subspace_key_errors(self):
        oracle, _, _ = two_subspace_oracle()
        with pytest.raises(KeyError):
            oracle.label_subspace(Subspace(["z"], [9]), np.zeros((1, 1)))
