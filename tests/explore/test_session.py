"""Tests for the end-to-end exploration runner."""

import numpy as np
import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_car
from repro.explore import (ConjunctiveOracle, ExplorationResult,
                           RegionOracle, run_lte_exploration)
from repro.geometry import BoxRegion


@pytest.fixture(scope="module")
def tiny_lte():
    table = make_car(n_rows=2500, seed=41)
    lte = LTE(LTEConfig(budget=20, ku=25, kq=30, n_tasks=6,
                        meta=MetaHyperParams(epochs=1, local_steps=2,
                                             batch_size=3, pretrain_epochs=1),
                        basic_steps=15, online_steps=4))
    lte.fit_offline(table)
    return lte


@pytest.fixture(scope="module")
def tiny_oracle(tiny_lte):
    from repro.bench import subspace_region
    subspace = list(tiny_lte.states)[0]
    state = tiny_lte.states[subspace]
    region = subspace_region(state, UISMode(1, 10), seed=3)
    return ConjunctiveOracle({subspace: region})


class TestRunner:
    def test_result_fields(self, tiny_lte, tiny_oracle):
        rows = tiny_lte.table.sample_rows(200, seed=0)
        result = run_lte_exploration(
            tiny_lte, tiny_oracle, rows, variant="meta",
            subspaces=list(tiny_oracle.subspace_regions))
        assert isinstance(result, ExplorationResult)
        assert 0 <= result.f1 <= 1
        assert result.labels_used == 20
        assert result.adapt_seconds > 0
        assert result.predictions.shape == (200,)
        assert result.ground_truth.shape == (200,)

    def test_repr(self, tiny_lte, tiny_oracle):
        rows = tiny_lte.table.sample_rows(50, seed=1)
        result = run_lte_exploration(
            tiny_lte, tiny_oracle, rows, variant="basic",
            subspaces=list(tiny_oracle.subspace_regions))
        assert "f1=" in repr(result)

    def test_requires_conjunctive_oracle(self, tiny_lte):
        with pytest.raises(TypeError):
            run_lte_exploration(tiny_lte,
                                RegionOracle(BoxRegion([0], [1])),
                                np.zeros((2, 5)))

    def test_labels_counted_per_subspace(self, tiny_lte, tiny_oracle):
        rows = tiny_lte.table.sample_rows(50, seed=2)
        before = tiny_oracle.labels_given
        run_lte_exploration(tiny_lte, tiny_oracle, rows, variant="meta",
                            subspaces=list(tiny_oracle.subspace_regions))
        assert tiny_oracle.labels_given - before == 20
