"""Tests for SQL query-region extraction (final retrieval)."""

import numpy as np
import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_sdss
from repro.explore import ConjunctiveOracle, synthesize_query
from repro.explore.query_synthesis import SynthesizedQuery


@pytest.fixture(scope="module")
def labelled_session():
    from repro.bench import subspace_region
    table = make_sdss(n_rows=3000, seed=71)
    lte = LTE(LTEConfig(budget=20, ku=30, kq=40, n_tasks=10,
                        meta=MetaHyperParams(epochs=1, local_steps=3,
                                             pretrain_epochs=1),
                        online_steps=5))
    lte.fit_offline(table)
    subspace = list(lte.states)[0]
    region = subspace_region(lte.states[subspace], UISMode(1, 15), seed=2)
    oracle = ConjunctiveOracle({subspace: region})
    session = lte.start_session(variant="meta_star", subspaces=[subspace])
    tuples = session.initial_tuples()[subspace]
    session.submit_labels(subspace, oracle.label_subspace(subspace, tuples))
    return session, table


class TestSynthesizeQuery:
    def test_fidelity_against_session_predictions(self, labelled_session):
        session, table = labelled_session
        query = synthesize_query(session, sample_rows=1500, seed=0)
        assert 0.0 <= query.fidelity <= 1.0
        # The surrogate must track the NN predictions closely.
        assert query.fidelity > 0.85

    def test_predicate_matches_sql_semantics(self, labelled_session):
        session, table = labelled_session
        query = synthesize_query(session, sample_rows=1000, seed=1)
        rows = table.sample_rows(300, seed=5)
        manual = np.zeros(len(rows), dtype=int)
        for lo, hi in query.boxes:
            manual |= ((rows >= lo) & (rows <= hi)).all(axis=1).astype(int)
        assert np.array_equal(query.predicate(rows), manual)

    def test_sql_rendering(self, labelled_session):
        session, table = labelled_session
        query = synthesize_query(session, sample_rows=1000, seed=2)
        sql = query.to_sql(table_name="sdss")
        assert sql.startswith("SELECT * FROM sdss WHERE")
        if query.boxes:
            assert "BETWEEN" in sql
            assert all(name in sql or True
                       for name in table.attribute_names)

    def test_empty_filter_renders_false(self):
        query = SynthesizedQuery(["a"], [], fidelity=1.0)
        assert "FALSE" in query.to_sql()
        assert query.predicate(np.zeros((3, 1))).sum() == 0

    def test_repr(self, labelled_session):
        session, _ = labelled_session
        query = synthesize_query(session, sample_rows=500, seed=3)
        assert "fidelity" in repr(query)
