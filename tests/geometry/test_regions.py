"""Tests for union-of-hulls and conjunctive regions."""

import numpy as np
import pytest

from repro.geometry import BoxRegion, ConjunctiveRegion, Hull, UnionRegion


def square_at(x, y, size=1.0):
    return np.array([[x, y], [x + size, y], [x + size, y + size],
                     [x, y + size]])


class TestBoxRegion:
    def test_membership(self):
        box = BoxRegion([0, 0], [1, 1])
        assert box.contains(np.array([[0.5, 0.5]]))[0]
        assert not box.contains(np.array([[1.5, 0.5]]))[0]

    def test_label_is_int(self):
        box = BoxRegion([0], [1])
        labels = box.label(np.array([[0.5], [2.0]]))
        assert labels.dtype == np.int64
        assert list(labels) == [1, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            BoxRegion([1, 0], [0, 1])
        with pytest.raises(ValueError):
            BoxRegion([0, 0], [1])


class TestUnionRegion:
    def test_union_semantics(self):
        region = UnionRegion([Hull(square_at(0, 0)), Hull(square_at(5, 5))])
        queries = np.array([[0.5, 0.5], [5.5, 5.5], [3.0, 3.0]])
        assert list(region.contains(queries)) == [True, True, False]

    def test_disconnected_region_supported(self):
        # The paper's generality claim: scattered UIS = union of parts.
        region = UnionRegion([square_at(0, 0), square_at(10, 10)])
        assert region.n_parts == 2
        assert not region.contains(np.array([[5.0, 5.0]]))[0]

    def test_accepts_raw_point_arrays(self):
        region = UnionRegion([square_at(0, 0)])
        assert region.contains(np.array([[0.5, 0.5]]))[0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            UnionRegion([])

    def test_mixed_dims_raise(self):
        with pytest.raises(ValueError):
            UnionRegion([Hull(np.array([[0.0], [1.0]])),
                         Hull(square_at(0, 0))])

    def test_short_circuit_consistency(self):
        # Overlapping hulls: membership independent of hull order.
        a = UnionRegion([square_at(0, 0), square_at(0.5, 0.5)])
        b = UnionRegion([square_at(0.5, 0.5), square_at(0, 0)])
        queries = np.random.default_rng(0).uniform(-1, 2, size=(50, 2))
        assert np.array_equal(a.contains(queries), b.contains(queries))


class TestConjunctiveRegion:
    def test_conjunction_over_column_groups(self):
        region = ConjunctiveRegion([
            ((0, 1), BoxRegion([0, 0], [1, 1])),
            ((2,), BoxRegion([10], [20])),
        ])
        rows = np.array([
            [0.5, 0.5, 15.0],   # both satisfied
            [0.5, 0.5, 25.0],   # second violated
            [2.0, 0.5, 15.0],   # first violated
        ])
        assert list(region.contains(rows)) == [True, False, False]

    def test_dim_is_total(self):
        region = ConjunctiveRegion([
            ((0, 1), BoxRegion([0, 0], [1, 1])),
            ((2,), BoxRegion([0], [1])),
        ])
        assert region.dim == 3

    def test_column_region_mismatch_raises(self):
        with pytest.raises(ValueError):
            ConjunctiveRegion([((0,), BoxRegion([0, 0], [1, 1]))])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ConjunctiveRegion([])

    def test_repr_shows_groups(self):
        region = ConjunctiveRegion([((0, 1), BoxRegion([0, 0], [1, 1]))])
        assert "(0, 1)" in repr(region)
