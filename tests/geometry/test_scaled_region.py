"""Tests for ScaledRegion (raw-coordinate adapter over normalized regions)."""

import numpy as np

from repro.geometry import BoxRegion
from repro.geometry.regions import ScaledRegion
from repro.ml import MinMaxScaler


def make_scaled_region():
    raw = np.array([[0.0, 100.0], [10.0, 300.0]])  # attr scales differ 20x
    scaler = MinMaxScaler().fit(raw)
    inner = BoxRegion([0.25, 0.25], [0.75, 0.75])  # in normalized space
    return ScaledRegion(inner, scaler)


class TestScaledRegion:
    def test_raw_queries_hit_normalized_region(self):
        region = make_scaled_region()
        # Raw midpoint (5, 200) -> normalized (0.5, 0.5): inside.
        assert region.contains(np.array([[5.0, 200.0]]))[0]
        # Raw corner (0, 100) -> normalized (0, 0): outside.
        assert not region.contains(np.array([[0.0, 100.0]]))[0]

    def test_label_int_semantics(self):
        region = make_scaled_region()
        labels = region.label(np.array([[5.0, 200.0], [0.0, 100.0]]))
        assert list(labels) == [1, 0]

    def test_dim_forwarded(self):
        assert make_scaled_region().dim == 2

    def test_n_parts_forwarded_or_one(self):
        region = make_scaled_region()
        assert region.n_parts == 1

    def test_equivalent_to_manual_scaling(self):
        region = make_scaled_region()
        rng = np.random.default_rng(0)
        raw = np.column_stack([rng.uniform(0, 10, 50),
                               rng.uniform(100, 300, 50)])
        expected = region.region.contains(region.scaler.transform(raw))
        assert np.array_equal(region.contains(raw), expected)
