"""Tests for the DSM dual-space polytope model.

The central invariant: when the true region IS convex, every certificate
the model issues (positive or negative) must be correct.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (PolytopeModel, THREE_SET_NEGATIVE,
                            THREE_SET_POSITIVE, THREE_SET_UNCERTAIN)
from repro.geometry.regions import BoxRegion


def labelled_box_sample(n, seed, lo=(0.3, 0.3), hi=(0.7, 0.7)):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 1, size=(n, 2))
    region = BoxRegion(lo, hi)
    return points, region.label(points), region


class TestUpdateAndMasks:
    def test_positive_mask_is_hull_of_positives(self):
        model = PolytopeModel(2)
        pos = np.array([[0.0, 0], [1, 0], [0, 1], [1, 1]])
        model.update(pos, np.ones(4))
        assert model.positive_mask(np.array([[0.5, 0.5]]))[0]
        assert not model.positive_mask(np.array([[2.0, 2.0]]))[0]

    def test_no_positives_no_positive_region(self):
        model = PolytopeModel(2)
        model.update(np.array([[0.0, 0.0]]), [0])
        assert not model.positive_mask(np.array([[0.0, 0.0]]))[0]

    def test_negative_mask_behind_negative_point(self):
        model = PolytopeModel(2)
        model.update(np.array([[0.0, 0], [1, 0], [0, 1], [1, 1]]),
                     np.ones(4))
        model.update(np.array([[2.0, 0.5]]), [0])
        # Query beyond the negative point, away from the hull: the ray from
        # q through (2, 0.5) hits the positive hull => provably negative.
        assert model.negative_mask(np.array([[3.0, 0.5]]))[0]
        # A point on the far side of the hull is not covered by this cone.
        assert not model.negative_mask(np.array([[-1.0, 0.5]]))[0]

    def test_incremental_update_grows_regions(self):
        model = PolytopeModel(2)
        model.update(np.array([[0.0, 0], [1, 0]]), [1, 1])
        before = model.positive_mask(np.array([[0.5, 0.8]]))[0]
        model.update(np.array([[0.5, 1.0]]), [1])
        after = model.positive_mask(np.array([[0.5, 0.8]]))[0]
        assert not before and after

    def test_validation(self):
        model = PolytopeModel(2)
        with pytest.raises(ValueError):
            model.update(np.zeros((2, 3)), [0, 1])
        with pytest.raises(ValueError):
            model.update(np.zeros((2, 2)), [0])


class TestThreeSet:
    def test_partition_codes(self):
        points, labels, _ = labelled_box_sample(120, seed=0)
        model = PolytopeModel(2)
        model.update(points[:40], labels[:40])
        codes = model.three_set_partition(points[40:])
        assert set(np.unique(codes)) <= {THREE_SET_POSITIVE,
                                         THREE_SET_NEGATIVE,
                                         THREE_SET_UNCERTAIN}

    def test_metric_in_unit_interval_and_monotone_data(self):
        points, labels, _ = labelled_box_sample(150, seed=1)
        model = PolytopeModel(2)
        model.update(points[:10], labels[:10])
        few = model.three_set_metric(points[100:])
        model.update(points[10:80], labels[10:80])
        many = model.three_set_metric(points[100:])
        assert 0.0 <= few <= many <= 1.0

    def test_metric_empty_queries(self):
        assert PolytopeModel(2).three_set_metric(np.zeros((0, 2))) == 0.0


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 300))
def test_property_certificates_sound_for_convex_truth(seed):
    """With convex ground truth, certified codes are never wrong."""
    points, labels, region = labelled_box_sample(100, seed=seed)
    model = PolytopeModel(2)
    model.update(points[:50], labels[:50])
    queries = points[50:]
    codes = model.three_set_partition(queries)
    truth = region.label(queries)
    certified = codes != THREE_SET_UNCERTAIN
    assert np.array_equal(codes[certified], truth[certified])
