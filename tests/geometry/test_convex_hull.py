"""Tests for convex hulls and containment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Hull, convex_hull_vertices_2d


UNIT_SQUARE = np.array([[0.0, 0], [1, 0], [1, 1], [0, 1]])


class TestMonotoneChain:
    def test_square_vertices(self):
        pts = np.vstack([UNIT_SQUARE, [[0.5, 0.5], [0.2, 0.7]]])
        verts = convex_hull_vertices_2d(pts)
        assert len(verts) == 4
        assert {tuple(v) for v in verts} == {tuple(v) for v in UNIT_SQUARE}

    def test_collinear_input(self):
        pts = np.array([[0.0, 0], [1, 1], [2, 2], [3, 3]])
        verts = convex_hull_vertices_2d(pts)
        if len(verts) > 2:
            u = verts[1] - verts[0]
            v = verts[-1] - verts[0]
            assert np.isclose(u[0] * v[1] - u[1] * v[0], 0)

    def test_two_points(self):
        verts = convex_hull_vertices_2d(np.array([[0.0, 0], [1, 1]]))
        assert len(verts) == 2


class TestHullContainment:
    def test_square_inside_outside(self):
        hull = Hull(UNIT_SQUARE)
        queries = np.array([[0.5, 0.5], [0.0, 0.0], [1.5, 0.5], [-0.1, 0.5]])
        assert list(hull.contains(queries)) == [True, True, False, False]

    def test_contains_point_scalar_api(self):
        hull = Hull(UNIT_SQUARE)
        assert hull.contains_point([0.3, 0.3])
        assert not hull.contains_point([2.0, 2.0])

    def test_1d_interval(self):
        hull = Hull(np.array([[1.0], [4.0], [2.0]]))
        got = hull.contains(np.array([[0.5], [1.0], [3.0], [4.5]]))
        assert list(got) == [False, True, True, False]

    def test_all_points_inside_own_hull(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(30, 2))
        hull = Hull(pts)
        assert hull.contains(pts).all()

    def test_collinear_2d_degenerate(self):
        pts = np.array([[0.0, 0], [1, 1], [2, 2]])
        hull = Hull(pts)
        assert hull.contains_point([1.5, 1.5])
        assert not hull.contains_point([1.5, 1.6])
        assert not hull.contains_point([3.0, 3.0])

    def test_single_point_hull(self):
        hull = Hull(np.array([[2.0, 3.0]]))
        assert hull.contains_point([2.0, 3.0])
        assert not hull.contains_point([2.1, 3.0])

    def test_duplicate_points(self):
        hull = Hull(np.tile([[1.0, 1.0]], (5, 1)))
        assert hull.contains_point([1.0, 1.0])

    def test_high_dim_few_points_degenerate(self):
        # 5 points in 8-D span at most a 4-D affine subspace.
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(5, 8))
        hull = Hull(pts)
        assert hull.contains(pts).all()
        assert not hull.contains_point(rng.normal(size=8) + 10)

    def test_high_dim_full_hull(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(40, 4))
        hull = Hull(pts)
        assert hull.contains(pts).all()
        centroid = pts.mean(axis=0)
        assert hull.contains_point(centroid)
        assert not hull.contains_point(centroid + 100)

    def test_dimension_mismatch_raises(self):
        hull = Hull(UNIT_SQUARE)
        with pytest.raises(ValueError):
            hull.contains(np.zeros((2, 3)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Hull(np.zeros((0, 2)))

    def test_bounding_box(self):
        lo, hi = Hull(UNIT_SQUARE).bounding_box
        assert np.allclose(lo, [0, 0]) and np.allclose(hi, [1, 1])

    def test_repr(self):
        assert "dim=2" in repr(Hull(UNIT_SQUARE))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1000))
def test_property_convex_combination_inside(seed):
    """Any convex combination of the points lies inside their hull."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(10, 2))
    hull = Hull(pts)
    weights = rng.dirichlet(np.ones(10))
    assert hull.contains_point(weights @ pts)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1000))
def test_property_scipy_hull_matches_monotone_chain(seed):
    """2-D containment agrees between Qhull equations and monotone chain."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(12, 2))
    hull = Hull(pts)
    verts = convex_hull_vertices_2d(pts)
    queries = rng.normal(size=(40, 2)) * 1.5

    def cross2(u, v):
        return u[0] * v[1] - u[1] * v[0]

    def inside_polygon(q):
        # Ray-free check: q inside CCW polygon iff left of all edges.
        n = len(verts)
        for i in range(n):
            a, b = verts[i], verts[(i + 1) % n]
            if cross2(b - a, q - a) < -1e-9:
                return False
        return True

    mask = hull.contains(queries)
    expected = np.array([inside_polygon(q) for q in queries])
    assert (mask == expected).all()
