"""Packed halfspace engine: bit-for-bit parity with the per-hull path.

The engine's contract is exact: for any hull zoo — full-dimensional,
1-D intervals, coincident points, collinear 2-D, affine-rank-deficient
high-dim, Qhull-joggle and bounding-box fallbacks — the packed masks
equal looping ``Hull.contains`` bit for bit.  The suite fuzzes that
contract property-style, checks the relative-tolerance fix and the
empty-query guarantees, and closes with end-to-end basic/meta/meta_star
parity through a real LTE session.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import FewShotOptimizer, HullRegistry
from repro.geometry import (BoxRegion, ConjunctiveRegion, Hull, HullPackCache,
                            PackedHulls, PackedRegion, UnionRegion,
                            union_masks)
from repro.geometry import convex_hull as convex_hull_module

pytestmark = pytest.mark.geometry


# ----------------------------------------------------------------------
# Reference implementations: the pre-engine per-hull loops.
# ----------------------------------------------------------------------
def loop_membership(hulls, points):
    """Per-hull `Hull.contains` loop -> (n, H) matrix."""
    return np.column_stack([h.contains(points) for h in hulls])


def loop_union_contains(hulls, points):
    """The historical ``UnionRegion.contains`` short-circuit loop."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    mask = np.zeros(len(points), dtype=bool)
    for hull in hulls:
        remaining = ~mask
        if not remaining.any():
            break
        mask[remaining] = hull.contains(points[remaining])
    return mask


def loop_refine(optimizer, points, predictions):
    """The historical per-region ``FewShotOptimizer.refine``."""
    predictions = np.asarray(predictions).astype(np.int64).copy()
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if optimizer is None or (optimizer.outer_region is None
                             and optimizer.inner_region is None):
        return predictions
    if optimizer.outer_region is not None:
        outside = ~loop_union_contains(optimizer.outer_region.hulls, points)
        predictions[outside & (predictions == 1)] = 0
    if optimizer.inner_region is not None:
        inside = loop_union_contains(optimizer.inner_region.hulls, points)
        predictions[inside & (predictions == 0)] = 1
    return predictions


# ----------------------------------------------------------------------
# Hull zoo: every degenerate regime random sampling produces.
# ----------------------------------------------------------------------
HULL_KINDS = ("full", "interval", "coincident", "collinear",
              "affine_rank_deficient", "few_points_high_dim",
              "large_magnitude")


def make_hull(kind, rng, dim=3):
    if kind == "interval":
        return Hull(rng.normal(size=(4, 1)) * rng.choice([1.0, 50.0]))
    if kind == "coincident":
        return Hull(np.tile(rng.normal(size=(1, dim)), (3, 1)))
    if kind == "collinear":
        direction = rng.normal(size=2)
        t = rng.normal(size=(5, 1))
        return Hull(rng.normal(size=2) + t * direction)
    if kind == "affine_rank_deficient":
        # rank-2 point set embedded in dim-D space.
        basis = rng.normal(size=(2, dim))
        return Hull(rng.normal(size=dim) + rng.normal(size=(7, 2)) @ basis)
    if kind == "few_points_high_dim":
        return Hull(rng.normal(size=(dim + 1, dim + 4)))
    if kind == "large_magnitude":
        return Hull(rng.normal(size=(8, dim)) * 1e7 + 1e8)
    return Hull(rng.normal(size=(4 * dim, dim)))


def queries_for(hull, rng, n=60):
    """Adversarial query mix: far, near, on-vertex, interpolated."""
    lo, hi = hull.bounding_box
    width = np.maximum(hi - lo, 1e-3)
    inside = hull.points[rng.integers(len(hull.points), size=n // 3)]
    weights = rng.dirichlet(np.ones(len(hull.points)), size=n // 3)
    mixed = weights @ hull.points
    near = lo + rng.uniform(-0.5, 1.5, size=(n // 3, hull.dim)) * width
    return np.vstack([inside, mixed, near])


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10 ** 6), st.sampled_from(HULL_KINDS))
def test_property_single_hull_pack_parity(seed, kind):
    """PackedHulls([h]) == h.contains, bit for bit, across the zoo."""
    rng = np.random.default_rng(seed)
    hull = make_hull(kind, rng)
    queries = queries_for(hull, rng)
    pack = PackedHulls([hull])
    assert np.array_equal(pack.membership(queries)[:, 0],
                          hull.contains(queries))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_property_mixed_zoo_pack_parity(seed):
    """A pack over every same-dim degenerate kind matches the loop."""
    rng = np.random.default_rng(seed)
    dim = int(rng.integers(2, 5))
    hulls = [
        make_hull("full", rng, dim),
        make_hull("coincident", rng, dim),
        make_hull("affine_rank_deficient", rng, dim),
        Hull(rng.normal(size=(3 * dim, dim)) * 1e6),
        make_hull("full", rng, dim),
    ]
    queries = np.vstack([queries_for(h, rng, n=30) for h in hulls])
    pack = PackedHulls(hulls)
    assert np.array_equal(pack.membership(queries),
                          loop_membership(hulls, queries))
    assert np.array_equal(pack.contains_any(queries),
                          loop_union_contains(hulls, queries))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_property_union_region_parity(seed):
    """UnionRegion.contains (packed) == historical short-circuit loop."""
    rng = np.random.default_rng(seed)
    hulls = [Hull(rng.normal(size=(8, 2)) + rng.normal(size=2) * 2)
             for _ in range(int(rng.integers(1, 7)))]
    region = UnionRegion(hulls)
    queries = rng.normal(size=(200, 2)) * 2
    assert np.array_equal(region.contains(queries),
                          loop_union_contains(hulls, queries))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_property_refine_batch_parity(seed):
    """Engine-backed refine/refine_batch == historical per-hull refine."""
    rng = np.random.default_rng(seed)

    class _FakeOptimizer:
        """Bare regions stub (summary-free) sharing refine machinery."""

        refine = FewShotOptimizer.refine
        refine_batch = staticmethod(FewShotOptimizer.refine_batch)

        def __init__(self, outer, inner):
            self.outer_region = outer
            self.inner_region = inner
            self._pack_cache = None

    def random_region(hull_pool):
        k = int(rng.integers(1, 4))
        picks = [hull_pool[int(rng.integers(len(hull_pool)))]
                 for _ in range(k)]
        return UnionRegion(picks)

    # A shared pool models fit_batch hull sharing across sessions.
    pool = [Hull(rng.normal(size=(7, 2)) + rng.normal(size=2))
            for _ in range(6)]
    optimizers = []
    for _ in range(4):
        outer = random_region(pool) if rng.random() > 0.2 else None
        inner = random_region(pool) if rng.random() > 0.2 else None
        optimizers.append(_FakeOptimizer(outer, inner))
    optimizers.append(None)
    points = rng.normal(size=(120, 2)) * 1.5
    predictions = [rng.integers(0, 2, size=len(points))
                   for _ in optimizers]
    batched = FewShotOptimizer.refine_batch(optimizers, points, predictions)
    for optimizer, raw, out in zip(optimizers, predictions, batched):
        assert np.array_equal(out, loop_refine(optimizer, points, raw))
        if optimizer is not None:
            assert np.array_equal(optimizer.refine(points, raw), out)


# ----------------------------------------------------------------------
# Qhull failure fallbacks (joggle, bounding box) stay parity-exact.
# ----------------------------------------------------------------------
class _FlakyQhull:
    def __init__(self, real, failures):
        self.real = real
        self.failures = failures
        self.calls = 0

    def __call__(self, points, qhull_options=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise convex_hull_module.QhullError("forced failure")
        if qhull_options is not None:
            return self.real(points, qhull_options=qhull_options)
        return self.real(points)


@pytest.mark.parametrize("failures", [1, 2])
def test_qhull_fallback_pack_parity(monkeypatch, failures):
    """Joggle retry (1 failure) and bbox fallback (2) both pack exactly."""
    rng = np.random.default_rng(5)
    pts = rng.normal(size=(12, 3))
    flaky = _FlakyQhull(convex_hull_module._SciPyHull, failures)
    monkeypatch.setattr(convex_hull_module, "_SciPyHull", flaky)
    hull = Hull(pts)
    assert flaky.calls >= failures
    queries = np.vstack([pts, rng.normal(size=(50, 3)) * 2])
    assert hull.contains(pts).all()
    assert np.array_equal(PackedHulls([hull]).membership(queries)[:, 0],
                          hull.contains(queries))
    if failures == 2:   # bbox fallback: exactly the 2d bbox rows, once
        assert hull.halfspaces().n_facets == 2 * hull.dim


# ----------------------------------------------------------------------
# Satellite: relative facet tolerance on large-magnitude data.
# ----------------------------------------------------------------------
class TestRelativeTolerance:
    def test_large_offset_square_boundary(self):
        """Boundary points of a far-from-origin hull stay inside.

        With the old absolute ``eps=1e-9`` facet test, rounding noise of
        order ``|x| * 1e-16`` (~1e-8 at offset 1e8) misclassified
        boundary points; the offset-relative tolerance absorbs it.
        """
        square = np.array([[0.0, 0], [1, 0], [1, 1], [0, 1]]) + 1e8
        hull = Hull(square)
        edge_midpoints = (square + np.roll(square, -1, axis=0)) / 2.0
        assert hull.contains(square).all()
        assert hull.contains(edge_midpoints).all()
        assert np.array_equal(
            PackedHulls([hull]).membership(edge_midpoints)[:, 0],
            np.ones(len(edge_midpoints), dtype=bool))
        # Relative, not sloppy: the tolerance band at offset 1e8 is
        # ~0.1 wide (1e-9 relative); proportionally-outside points
        # stay outside.
        assert not hull.contains_point([1e8 + 0.5, 1e8 + 2.0])

    def test_degenerate_span_band_width_preserved(self):
        """Bbox rows must not pinch the 1e-6-scale on-span band.

        A constant attribute makes the hull degenerate in that
        direction; points within the historical ``1e-6 * scale``
        residual band of the span stay members (the bbox rows carry
        the span band's fixed tolerance on the degenerate path).
        """
        hull = Hull(np.array([[0.0, 5], [1, 5], [2, 5], [0.5, 5]]))
        assert hull.contains_point([1.0, 5.0 + 1e-7])
        assert not hull.contains_point([1.0, 5.0 + 1e-4])
        coincident = Hull(np.zeros((3, 3)))
        assert coincident.contains_point([0.9e-6, 0.9e-6, 0.0])
        assert not coincident.contains_point([2e-6, 0.0, 0.0])
        # The packed gate honours the widened band too.
        pack = PackedHulls([hull, Hull(np.ones((2, 2)))])
        queries = np.array([[1.0, 5.0 + 1e-7], [1.0, 5.0 + 1e-4]])
        assert np.array_equal(pack.membership(queries),
                              loop_membership(pack.hulls, queries))

    def test_span_band_is_per_direction(self):
        """The on-span band is L-inf over the complement directions.

        An L2 residual ball is not polyhedral, so the lowering uses a
        per-direction band: a corner point whose every residual
        component is within 1e-6*scale is a member even though its L2
        residual exceeds it (documented semantics, pinned here).
        """
        coincident = Hull(np.zeros((4, 3)))
        assert coincident.contains_point([7e-7, 7e-7, 7e-7])
        assert not coincident.contains_point([1.1e-6, 0.0, 0.0])

    def test_large_offset_interval(self):
        hull = Hull(np.array([[1e9], [2e9]]))
        assert hull.contains_point([1e9])
        assert hull.contains_point([2e9])
        assert hull.contains_point([1.5e9])
        assert not hull.contains_point([2.1e9])

    def test_packed_tolerance_matches_hull(self):
        """Pack tolerances are the hull's own resolved tolerances."""
        rng = np.random.default_rng(0)
        hulls = [Hull(rng.normal(size=(10, 2)) * s) for s in (1.0, 1e6)]
        pack = PackedHulls(hulls)
        resolved = np.concatenate([h.halfspaces().tol() for h in hulls])
        assert np.array_equal(pack.tol, resolved)
        # The dense stacked evaluation agrees with the gated kernel.
        queries = rng.normal(size=(50, 2)) * 1e6
        dense = (pack.facet_values(queries) <= pack.tol)
        member = np.logical_and.reduceat(dense, pack.starts[:-1], axis=1)
        assert np.array_equal(member, pack.membership(queries))


# ----------------------------------------------------------------------
# Satellite: empty (0, d) queries return empty masks everywhere.
# ----------------------------------------------------------------------
class TestEmptyQueries:
    def _check(self, predicate, dim):
        for empty in ([], np.zeros((0, dim)), np.zeros(0)):
            mask = predicate(empty)
            assert mask.shape == (0,)
            assert mask.dtype in (np.bool_, np.int64)

    def test_hull(self):
        hull = Hull(np.array([[0.0, 0], [1, 0], [0, 1], [1, 1]]))
        self._check(hull.contains, 2)

    def test_zero_width_nonempty_still_raises(self):
        """(n, 0) with n > 0 is a width mismatch, not an empty query."""
        hull = Hull(np.array([[0.0, 0], [1, 0], [0, 1]]))
        with pytest.raises(ValueError):
            hull.contains(np.zeros((5, 0)))

    def test_union_region(self):
        region = UnionRegion([np.array([[0.0, 0], [1, 0], [0, 1]])])
        self._check(region.contains, 2)
        self._check(region.label, 2)

    def test_box_region(self):
        self._check(BoxRegion([0, 0], [1, 1]).contains, 2)

    def test_conjunctive_region(self):
        region = ConjunctiveRegion([
            ((0, 1), UnionRegion([np.array([[0.0, 0], [1, 0], [0, 1]])])),
            ((2,), BoxRegion([0.0], [1.0])),
        ])
        self._check(region.contains, 3)

    def test_packed_engine(self):
        hulls = [Hull(np.array([[0.0, 0], [1, 0], [0, 1]]))]
        pack = PackedHulls(hulls)
        assert pack.membership(np.zeros((0, 2))).shape == (0, 1)
        assert pack.contains_any([]).shape == (0,)
        masks = union_masks([hulls, []], np.zeros((0, 2)))
        assert all(m.shape == (0,) for m in masks)

    def test_scaled_region_empty(self):
        from repro.geometry.regions import ScaledRegion
        from repro.ml.scaler import MinMaxScaler
        scaler = MinMaxScaler().fit(np.array([[0.0, 0], [2, 2]]))
        region = ScaledRegion(
            UnionRegion([np.array([[0.0, 0], [1, 0], [0, 1]])]), scaler)
        self._check(region.contains, 2)


# ----------------------------------------------------------------------
# Conjunctive / packed-region parity.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_property_conjunctive_parity(seed):
    """Compiled ConjunctiveRegion == per-part projection loop."""
    rng = np.random.default_rng(seed)
    union_a = UnionRegion([Hull(rng.normal(size=(6, 2)))
                           for _ in range(2)])
    union_b = UnionRegion([Hull(rng.normal(size=(5, 1)))])
    box = BoxRegion([-1.0], [1.0])
    region = ConjunctiveRegion([((0, 1), union_a), ((2,), union_b),
                                ((3,), box)])
    rows = rng.normal(size=(150, 4)) * 1.5
    expected = union_a.contains(rows[:, [0, 1]]) \
        & union_b.contains(rows[:, [2]]) \
        & box.contains(rows[:, [3]])
    assert np.array_equal(region.contains(rows), expected)
    packed = region.compiled()
    assert isinstance(packed, PackedRegion)
    assert packed.n_groups == 2   # the box rides the generic path


# ----------------------------------------------------------------------
# Pack caching and registry engine calls.
# ----------------------------------------------------------------------
class TestPackReuse:
    def test_cache_hit_on_same_hull_identities(self):
        rng = np.random.default_rng(1)
        hulls = [Hull(rng.normal(size=(6, 2))) for _ in range(3)]
        cache = HullPackCache(capacity=4)
        pack1 = cache.get(hulls)
        pack2 = cache.get(hulls)
        assert pack1 is pack2
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1
        # A different identity set compiles its own pack.
        other = [Hull(h.points.copy()) for h in hulls]
        assert cache.get(other) is not pack1

    def test_cache_eviction(self):
        rng = np.random.default_rng(2)
        cache = HullPackCache(capacity=2)
        packs = [cache.get([Hull(rng.normal(size=(5, 2)))])
                 for _ in range(4)]
        assert len(cache) == 2
        assert packs[0] is not packs[1]

    def test_evict_containing(self):
        rng = np.random.default_rng(9)
        shared = Hull(rng.normal(size=(6, 2)))
        own = Hull(rng.normal(size=(6, 2)))
        other = Hull(rng.normal(size=(6, 2)))
        cache = HullPackCache()
        cache.get([shared, own])
        cache.get([other])
        assert cache.evict_containing([own]) == 1
        assert len(cache) == 1
        assert cache.evict_containing([]) == 0

    def test_union_masks_uses_cache(self):
        rng = np.random.default_rng(3)
        hulls = [Hull(rng.normal(size=(6, 2))) for _ in range(3)]
        cache = HullPackCache()
        points = rng.normal(size=(40, 2))
        first = union_masks([hulls[:2], hulls[1:]], points,
                            pack_cache=cache)
        second = union_masks([hulls[:2], hulls[1:]], points,
                             pack_cache=cache)
        assert cache.stats["misses"] == 1 and cache.stats["hits"] == 1
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_region_compiled_is_cached(self):
        rng = np.random.default_rng(4)
        region = UnionRegion([Hull(rng.normal(size=(6, 2)))])
        assert region.compiled() is region.compiled()

    def test_registry_membership_matches_loop(self):
        rng = np.random.default_rng(5)
        registry = HullRegistry()
        hulls = [Hull(rng.normal(size=(6, 2))) for _ in range(4)]
        for hull in hulls:
            registry.add(hull)
        points = rng.normal(size=(80, 2)) * 2
        assert np.array_equal(registry.membership(points),
                              loop_membership(hulls, points))


# ----------------------------------------------------------------------
# Serialized packed form: restores never re-run SVD / Qhull.
# ----------------------------------------------------------------------
class TestPackedSerialization:
    def _zoo_registry(self):
        rng = np.random.default_rng(7)
        registry = HullRegistry()
        for kind in ("full", "coincident", "collinear",
                     "affine_rank_deficient"):
            registry.add(make_hull(kind, rng, dim=2)
                         if kind != "collinear" else make_hull(kind, rng))
        registry.add(Hull(rng.normal(size=(5, 1))))
        return registry, rng

    def test_roundtrip_bit_identical(self):
        registry, rng = self._zoo_registry()
        restored = HullRegistry.restore(registry.state())
        for original, copy in zip(registry.hulls, restored.hulls):
            queries = queries_for(original, rng, n=45)
            assert np.array_equal(original.contains(queries),
                                  copy.contains(queries))
            system_a, system_b = original.halfspaces(), copy.halfspaces()
            assert np.array_equal(system_a.A, system_b.A)
            assert np.array_equal(system_a.b, system_b.b)

    def test_restore_never_recompiles(self, monkeypatch):
        """No Qhull and no SVD run when restoring the packed form."""
        registry, _ = self._zoo_registry()
        state = registry.state()

        def boom(*args, **kwargs):
            raise AssertionError("geometry was recompiled on restore")

        monkeypatch.setattr(convex_hull_module, "_SciPyHull", boom)
        monkeypatch.setattr(np.linalg, "svd", boom)
        restored = HullRegistry.restore(state)
        assert len(restored.hulls) == len(registry.hulls)
        for hull in restored.hulls:   # evaluation works, sans recompiles
            assert hull.contains(hull.points).all()

    def test_legacy_points_only_state_restores(self):
        """Pre-engine checkpoints (bare point arrays) still restore."""
        rng = np.random.default_rng(8)
        points = rng.normal(size=(6, 2))
        restored = HullRegistry.restore([points, {"points": points}])
        queries = rng.normal(size=(30, 2))
        reference = Hull(points).contains(queries)
        for hull in restored.hulls:
            assert np.array_equal(hull.contains(queries), reference)


# ----------------------------------------------------------------------
# UIS generation and meta-task generation ride the packed path.
# ----------------------------------------------------------------------
class TestGenerationParity:
    def test_generate_batch_matches_sequential(self):
        from repro.core.uis import UISGenerator, UISMode
        rng = np.random.default_rng(11)
        centers = rng.uniform(size=(30, 2))
        proximity = np.linalg.norm(
            centers[:, None, :] - centers[None, :, :], axis=-1)
        mode = UISMode(alpha=3, psi=8)
        sequential = [UISGenerator(centers, proximity, mode, seed=4)
                      .generate() for _ in range(1)]
        gen_a = UISGenerator(centers, proximity, mode, seed=4)
        gen_b = UISGenerator(centers, proximity, mode, seed=4)
        batch = gen_a.generate_batch(5)
        singles = [gen_b.generate() for _ in range(5)]
        assert len(batch) == 5
        for (region_a, mask_a), (region_b, mask_b) in zip(batch, singles):
            assert np.array_equal(mask_a, mask_b)
            for hull_a, hull_b in zip(region_a.hulls, region_b.hulls):
                assert np.array_equal(hull_a.points, hull_b.points)
        del sequential

    def test_meta_task_generate_matches_sequential(self, task_generator):
        from repro.core.meta_task import MetaTaskGenerator
        kwargs = dict(ku=20, ks=8, kq=25, mode=task_generator.mode,
                      delta=3, seed=123)
        data = task_generator.data[:600]
        batched = MetaTaskGenerator(data, **kwargs).generate(4)
        single_gen = MetaTaskGenerator(data, **kwargs)
        singles = [single_gen.generate_task() for _ in range(4)]
        for task_a, task_b in zip(batched, singles):
            assert np.array_equal(task_a.support_x, task_b.support_x)
            assert np.array_equal(task_a.support_y, task_b.support_y)
            assert np.array_equal(task_a.query_y, task_b.query_y)
            assert np.array_equal(task_a.center_member_mask,
                                  task_b.center_member_mask)
            assert np.array_equal(task_a.feature_vector,
                                  task_b.feature_vector)


# ----------------------------------------------------------------------
# Query-synthesis predicate: packed DNF == box loop.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_property_synthesized_predicate_parity(seed):
    from repro.explore.query_synthesis import SynthesizedQuery
    rng = np.random.default_rng(seed)
    d = int(rng.integers(1, 5))
    boxes = []
    for _ in range(int(rng.integers(0, 4))):
        a = rng.normal(size=d)
        b = rng.normal(size=d)
        boxes.append((np.minimum(a, b), np.maximum(a, b)))
    query = SynthesizedQuery(["c{}".format(j) for j in range(d)],
                             boxes, fidelity=0.0)
    rows = rng.normal(size=(120, d))
    if boxes:   # plant exact-boundary rows
        rows[0] = boxes[0][0]
        rows[1] = boxes[0][1]
    expected = np.zeros(len(rows), dtype=np.int64)
    for lo, hi in boxes:
        expected |= ((rows >= lo) & (rows <= hi)).all(axis=1) \
            .astype(np.int64)
    assert np.array_equal(query.predicate(rows), expected)
    assert query.predicate(np.zeros((0, d))).shape == (0,)


def test_synthesized_predicate_nan_rows_excluded():
    """A row with a missing (NaN) attribute never matches the filter."""
    from repro.explore.query_synthesis import SynthesizedQuery
    query = SynthesizedQuery(["a", "b"], [(np.zeros(2), np.ones(2))],
                             fidelity=0.0)
    rows = np.array([[np.nan, 0.5], [0.5, 0.5], [2.0, 0.5]])
    assert list(query.predicate(rows)) == [0, 1, 0]


# ----------------------------------------------------------------------
# End-to-end: basic / meta / meta_star predictions equal the per-hull
# reference path through a real trained system.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine_lte():
    from repro.core import LTE, LTEConfig
    from repro.core.meta_training import MetaHyperParams
    from repro.data import make_car
    table = make_car(n_rows=1500, seed=19)
    lte = LTE(LTEConfig(budget=16, ku=20, kq=25, n_tasks=4,
                        meta=MetaHyperParams(epochs=1, local_steps=2,
                                             batch_size=3,
                                             pretrain_epochs=1),
                        basic_steps=10, online_steps=3))
    lte.fit_offline(table)
    return lte


@pytest.mark.parametrize("variant", ["basic", "meta", "meta_star"])
def test_end_to_end_session_parity(engine_lte, variant):
    """Session predictions == classifier output + per-hull-loop refine."""
    lte = engine_lte
    rng = np.random.default_rng(23)
    session = lte.start_session(variant=variant, seed=5)
    for subspace, tuples in session.initial_tuples().items():
        state = lte.states[subspace]
        scaled = state.to_scaled(tuples)
        labels = (scaled.sum(axis=1) < np.median(scaled.sum(axis=1))) \
            .astype(np.int64)
        labels[0] = 1   # ensure at least one positive anchor
        session.submit_labels(subspace, labels)
    rows = lte.table.sample_rows(400, seed=3)
    predictions = session.predict(rows)
    reference = np.ones(len(rows), dtype=np.int64)
    for subspace, subsession in session._subsessions.items():
        scaled = subsession.state.to_scaled(subspace.project(rows))
        raw = subsession.adapted.predict(
            subsession.state.encode_scaled(scaled))
        reference &= loop_refine(subsession.optimizer, scaled, raw)
    assert np.array_equal(predictions, reference)
    if variant == "meta_star":
        assert any(ss.optimizer is not None
                   for ss in session._subsessions.values())
    del rng
