"""Incremental serving over appended stores: watermarks, drift, rollout.

Freshness contract: a session that already answered at store version N
scans only chunks past its watermark when the store grows, and the
merged result is bit-for-bit what a full rescan produces — for every
variant, sequentially and through the serving engine.  Drift past the
fitted scaler range triggers an artifact refresh that rolls out through
the sharded gateway without dropping a live session.
"""

import copy

import numpy as np
import pytest

from repro.data.schema import Table
from repro.serve import SessionManager

pytestmark = pytest.mark.ingest


def grow(store_table, extra_rows):
    return np.array(store_table.data[:extra_rows])


def feed(manager, sid, oracle):
    for subspace, tuples in manager.initial_tuples(sid).items():
        manager.submit_labels(sid, subspace,
                              oracle.label_subspace(subspace, tuples))


# ----------------------------------------------------------------------
# Session-level watermarks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["basic", "meta", "meta_star"])
def test_incremental_predict_matches_full_rescan(store_lte, store_subspaces,
                                                 store_table, make_oracle,
                                                 variant):
    store = store_table.to_store(chunk_rows=256)
    oracle = make_oracle(seed=5)
    session = store_lte.start_session(variant=variant,
                                      subspaces=store_subspaces, seed=7)
    for subspace, tuples in session.initial_tuples().items():
        session.submit_labels(subspace,
                              oracle.label_subspace(subspace, tuples))

    first = session.predict_store(store)
    assert session.last_store_scan["chunks_watermarked"] == 0

    closed_before = store.closed_chunks
    extra = grow(store_table, 300)
    store.append_blocks([extra])

    incremental = session.predict_store(store)
    scan = dict(session.last_store_scan)
    # Only chunks past the watermark were eligible for scanning.
    assert scan["chunks_watermarked"] == closed_before > 0
    assert scan["chunks_scanned"] <= scan["chunks"] - closed_before

    # ... and the merged answer is bit-identical to a full rescan ...
    session._store_marks.clear()
    full = session.predict_store(store)
    assert session.last_store_scan["chunks_watermarked"] == 0
    assert np.array_equal(incremental, full)

    # ... and to a from-scratch store over the concatenated rows.
    scratch = Table("CAR", store_table.attributes,
                    np.vstack([store_table.data, extra])).to_store(
                        chunk_rows=256)
    assert np.array_equal(full, session.predict_store(scratch))

    # A repeat at the same version is served wholesale from the mark.
    repeat = session.predict_store(store)
    assert np.array_equal(repeat, incremental)
    assert session.last_store_scan["chunks_scanned"] == 0
    assert session.last_store_scan["chunks_watermarked"] == store.n_chunks


# ----------------------------------------------------------------------
# Manager-level watermarks
# ----------------------------------------------------------------------
def test_manager_incremental_parity_and_accounting(store_lte,
                                                   store_subspaces,
                                                   store_table, make_oracle):
    store = store_table.to_store(chunk_rows=256)
    manager = SessionManager(store_lte)
    oracles = make_oracle(seed=31, count=3)
    sids = [manager.open_session(variant="meta_star",
                                 subspaces=store_subspaces, seed=i)
            for i in range(3)]
    for sid, oracle in zip(sids, oracles):
        feed(manager, sid, oracle)
    manager.flush()

    first = manager.predict_many_store(sids, store)
    store.append_blocks([grow(store_table, 400)])

    incremental = manager.predict_many_store(sids, store)
    scan = dict(manager.last_store_scan)
    assert scan["sessions"] == 3
    assert scan["watermark_skipped"] > 0        # closed prefix not re-run
    assert scan["chunk_evals"] < scan["chunk_evals_possible"]
    assert scan["sessions_served_from_mark"] == 0   # the store did grow

    manager._store_marks.clear()
    full = manager.predict_many_store(sids, store)
    for sid in sids:
        assert np.array_equal(incremental[sid], full[sid])
        # The pre-append rows' predictions are stable across the append.
        assert np.array_equal(incremental[sid][:len(first[sid])],
                              first[sid])

    # A repeat at the same version touches zero chunks for every session.
    repeat = manager.predict_many_store(sids, store)
    assert manager.last_store_scan["chunk_evals"] == 0
    assert manager.last_store_scan["sessions_served_from_mark"] == 3
    for sid in sids:
        assert np.array_equal(repeat[sid], full[sid])


def test_snapshot_restores_store_watermarks(tmp_path, store_lte,
                                            store_subspaces, store_table,
                                            make_oracle):
    """A restored manager resumes incremental scanning from the
    persisted per-(session, store-uid) watermarks instead of paying one
    full rescan per session."""
    from repro import persist

    store = store_table.to_store(chunk_rows=256)
    manager = SessionManager(store_lte)
    oracles = make_oracle(seed=11, count=2)
    sids = [manager.open_session(variant="meta_star",
                                 subspaces=store_subspaces, seed=i)
            for i in range(2)]
    for sid, oracle in zip(sids, oracles):
        feed(manager, sid, oracle)
    manager.flush()
    before = manager.predict_many_store(sids, store)

    # Round-trip through the on-disk codec, not just the dict.
    persist.save_manager(tmp_path / "serving", manager)
    restored = persist.load_manager(tmp_path / "serving", store_lte)

    # Unchanged store: served wholesale from the restored marks —
    # zero chunks touched, answers bit-identical.
    served = restored.predict_many_store(sids, store)
    scan = dict(restored.last_store_scan)
    assert scan["sessions_served_from_mark"] == len(sids)
    assert scan["chunk_evals"] == 0
    for sid in sids:
        assert np.array_equal(served[sid], before[sid])

    # Appended store: the restored marks bound the scan to the new
    # chunks, and the merged result matches a from-scratch rescan.
    closed_before = store.closed_chunks
    assert closed_before > 0
    store.append_blocks([grow(store_table, 300)])
    incremental_mgr = SessionManager.restore(store_lte, manager.snapshot())
    incremental = incremental_mgr.predict_many_store(sids, store)
    scan = dict(incremental_mgr.last_store_scan)
    assert scan["sessions_served_from_mark"] == 0   # the store did grow
    assert scan["watermark_skipped"] == closed_before * len(sids)
    assert scan["chunk_evals"] < scan["chunk_evals_possible"]
    incremental_mgr._store_marks.clear()
    full = incremental_mgr.predict_many_store(sids, store)
    for sid in sids:
        assert np.array_equal(incremental[sid], full[sid])

    # Pre-watermark snapshots (no "store_marks" key) restore cleanly
    # and simply rescan once.
    legacy_snapshot = manager.snapshot()
    del legacy_snapshot["store_marks"]
    legacy = SessionManager.restore(store_lte, legacy_snapshot)
    assert legacy._store_marks == {}
    legacy_results = legacy.predict_many_store(sids, store)
    assert legacy.last_store_scan["sessions_served_from_mark"] == 0
    for sid in sids:
        assert np.array_equal(legacy_results[sid], full[sid])


def test_readaptation_invalidates_only_that_sessions_mark(store_lte,
                                                          store_subspaces,
                                                          store_table,
                                                          make_oracle):
    store = store_table.to_store(chunk_rows=256)
    manager = SessionManager(store_lte)
    oracles = make_oracle(seed=43, count=2)
    sids = [manager.open_session(variant="meta_star",
                                 subspaces=store_subspaces, seed=i)
            for i in range(2)]
    for sid, oracle in zip(sids, oracles):
        feed(manager, sid, oracle)
    manager.flush()
    manager.predict_many_store(sids, store)

    # One more label round for session 0 bumps its model versions.
    subspace = store_subspaces[0]
    state = store_lte.states[subspace]
    extra = state.to_raw(state.data[60:64])
    manager.add_labels(sids[0], subspace, extra,
                       oracles[0].label_subspace(subspace, extra))
    manager.flush()

    results = manager.predict_many_store(sids, store)
    scan = dict(manager.last_store_scan)
    # Session 1's mark still serves; session 0's is stale and rescans.
    assert scan["sessions_served_from_mark"] == 1
    assert scan["chunk_evals"] == store.n_chunks

    manager._store_marks.clear()
    full = manager.predict_many_store(sids, store)
    for sid in sids:
        assert np.array_equal(results[sid], full[sid])


def test_predict_group_spans_artifact_generations(store_lte,
                                                  store_subspaces,
                                                  store_table, make_oracle):
    """Sessions adapted under different artifact generations (before and
    after a refresh_subspace) must each encode with their *own* state —
    grouped serving stays bit-identical to per-session prediction."""
    lte = copy.deepcopy(store_lte)
    manager = SessionManager(lte)
    oracles = make_oracle(seed=47, count=2)

    old_sid = manager.open_session(variant="meta_star",
                                   subspaces=store_subspaces, seed=1)
    feed(manager, old_sid, oracles[0])
    manager.flush()

    lte.refresh_subspace(store_table, store_subspaces[0], train=True)

    new_sid = manager.open_session(variant="meta_star",
                                   subspaces=store_subspaces, seed=2)
    feed(manager, new_sid, oracles[1])
    manager.flush()

    rows = store_table.data[:400]
    grouped = manager.predict_many([old_sid, new_sid], rows)
    for sid in (old_sid, new_sid):
        reference = manager.session(sid).predict(rows)
        assert np.array_equal(grouped[sid], reference)


# ----------------------------------------------------------------------
# Drift-triggered refresh
# ----------------------------------------------------------------------
def test_drift_triggers_subspace_refresh(store_lte, store_subspaces,
                                         store_table):
    lte = copy.deepcopy(store_lte)
    store = store_table.to_store(chunk_rows=256)
    monitor = lte.freshness_monitor(threshold=0.2)
    monitor.observe(store)
    assert monitor.drifted() == []

    target = store_subspaces[0]
    drifting = grow(store_table, 200)
    cols = list(target.columns)
    drifting[:, cols] = drifting[:, cols] * 4.0 + 100.0
    store.append_blocks([drifting])
    monitor.observe(store)
    assert monitor.drifted() == [target]

    old_state = lte.states[target]
    refreshed = lte.refresh_drifted(store, monitor, train=False)
    assert refreshed == [target]
    # Zero-downtime half: the state is replaced, never mutated.
    assert lte.states[target] is not old_state
    assert old_state.scaler is not lte.states[target].scaler
    # The refreshed scaler covers the drifted rows; the monitor is
    # re-armed against the new fit.
    assert monitor.drifted() == []
    monitor.observe(store)
    assert monitor.drifted() == []


def test_gateway_refresh_model_rolls_out_live(tmp_path, store_config,
                                              store_table):
    """The full streaming story through the sharded tier: append, detect
    drift, refresh + re-pretrain, broadcast — zero dropped sessions,
    already-adapted predictions bit-identical across the roll."""
    from repro.bench.workloads import convex_oracles
    from repro.core import LTE
    from repro.shard import ShardGateway

    store = store_table.to_store(chunk_rows=256,
                                 directory=str(tmp_path / "car"))
    lte = LTE(store_config)
    lte.fit_offline(store, subspaces=None)
    subspaces = list(lte.states)[:2]
    oracle = convex_oracles(lte, subspaces, 1, psi_choices=(12, 10),
                            seed=5)[0]
    eval_rows = store.sample_rows(200, seed=5)

    with ShardGateway(lte, n_workers=2) as gateway:
        old_version = gateway.model_version
        sids = [gateway.open_session(variant="meta_star",
                                     subspaces=subspaces, seed=i)
                for i in range(3)]
        for sid in sids:
            for subspace, tuples in gateway.initial_tuples(sid).items():
                gateway.submit_labels(sid, subspace,
                                      oracle.label_subspace(subspace,
                                                            tuples))
        gateway.flush_all()
        before = gateway.predict_many(sids, eval_rows)

        monitor = lte.freshness_monitor(threshold=0.2)
        monitor.observe(store)
        drifting = grow(store_table, 200)
        cols = list(subspaces[0].columns)
        drifting[:, cols] = drifting[:, cols] * 4.0 + 100.0
        store.append_blocks([drifting])
        monitor.observe(store)
        drifted = monitor.drifted()
        assert drifted == [subspaces[0]]

        new_version = gateway.refresh_model(drifted, train=True)
        assert new_version != old_version
        assert gateway.model_version == new_version
        stats = gateway.stats()
        assert all(w["model"] == new_version for w in stats["workers"])

        # Zero dropped sessions: every live session still serves, and
        # its already-adapted predictions are bit-identical.
        after = gateway.predict_many(sids, eval_rows)
        for sid in sids:
            assert gateway.poll(sid)["errors"] == []
            assert np.array_equal(after[sid], before[sid])

        # Sessions opened after the roll adapt under the fresh artifacts.
        fresh = gateway.open_session(variant="meta_star",
                                     subspaces=subspaces, seed=9)
        for subspace, tuples in gateway.initial_tuples(fresh).items():
            gateway.submit_labels(fresh, subspace,
                                  oracle.label_subspace(subspace, tuples))
        gateway.flush_all()
        assert gateway.predict(fresh, eval_rows).shape == (200,)
        assert gateway.poll(fresh)["errors"] == []
