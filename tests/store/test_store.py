"""Chunk store core: chunking, gathering, persistence, builders, sampling."""

import os

import numpy as np
import pytest

from repro.data import (build_dataset_store, load_dataset, make_car,
                        stratified_chunk_sample)
from repro.store import DEFAULT_CHUNK_ROWS, ChunkStore

pytestmark = pytest.mark.store


@pytest.fixture(scope="module")
def table():
    return make_car(n_rows=5000, seed=13)


@pytest.fixture(scope="module")
def store(table):
    return table.to_store(chunk_rows=700)


def test_chunking_preserves_rows_and_schema(table, store):
    assert store.n_rows == table.n_rows
    assert store.n_chunks == -(-table.n_rows // 700)
    assert store.attribute_names == table.attribute_names
    assert [a.hint for a in store.attributes] \
        == [a.hint for a in table.attributes]
    assert np.array_equal(store.data, table.data)
    # Chunks are column-contiguous and read-only.
    block = store.chunk(0)
    assert block.flags.f_contiguous
    assert not block.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        block[0, 0] = 1.0


def test_zone_maps_are_exact(table, store):
    zone = store.zone_maps
    for ci in range(store.n_chunks):
        lo = int(store.offsets[ci])
        hi = int(store.offsets[ci + 1])
        assert np.array_equal(zone.mins[ci], table.data[lo:hi].min(axis=0))
        assert np.array_equal(zone.maxs[ci], table.data[lo:hi].max(axis=0))
        assert zone.counts[ci] == hi - lo
        assert not zone.has_nan[ci].any()
    glo, ghi = store.column_bounds()
    assert np.array_equal(glo, table.data.min(axis=0))
    assert np.array_equal(ghi, table.data.max(axis=0))


def test_take_matches_fancy_indexing(table, store):
    rng = np.random.default_rng(0)
    idx = rng.choice(table.n_rows, size=800, replace=False)
    assert np.array_equal(store.take(idx), table.data[idx])
    assert np.array_equal(store.take(idx, columns=[3, 0]),
                          table.data[idx][:, [3, 0]])
    assert store.take([]).shape == (0, table.n_attributes)
    with pytest.raises(IndexError):
        store.take([table.n_rows])


def test_sample_rows_bit_identical_to_table(table, store):
    assert np.array_equal(store.sample_rows(250, seed=9),
                          table.sample_rows(250, seed=9))


def test_iter_chunks_projection(table, store):
    rebuilt = np.vstack([block for _, block
                         in store.iter_chunks(columns=[1, 4])])
    assert np.array_equal(rebuilt, table.data[:, [1, 4]])


def test_disk_roundtrip(tmp_path, table, store):
    disk = store.save(str(tmp_path / "car"))
    reopened = ChunkStore.open(str(tmp_path / "car"))
    assert reopened.digest == store.digest
    assert reopened.chunk_rows == store.chunk_rows
    assert reopened.provenance == store.provenance
    assert np.array_equal(reopened.data, table.data)
    # Lazily mapped chunks are read-only memmaps.
    block = ChunkStore.open(str(tmp_path / "car")).chunk(0)
    assert isinstance(block, np.memmap)
    assert np.array_equal(np.asarray(block), table.data[:700])
    assert disk.digest == store.digest


def test_open_rejects_tampered_store(tmp_path, store):
    # Tampered manifest: caught eagerly at open() against the zone maps.
    path = str(tmp_path / "tampered-manifest")
    store.save(path)
    import json
    manifest = json.load(open(os.path.join(path, "store.json")))
    manifest["digest"] = "0" * 32
    json.dump(manifest, open(os.path.join(path, "store.json"), "w"))
    with pytest.raises(ValueError):
        ChunkStore.open(path)

    # Tampered chunk bytes: the manifest/zone-map pair is still
    # self-consistent, so open() succeeds, but the chunk's recorded
    # digest no longer matches its bytes — caught on first access,
    # before a single wrong row is served.
    path = str(tmp_path / "tampered-chunk")
    store.save(path)
    chunk0 = os.path.join(path, "chunk-00000.npy")
    np.save(chunk0, np.load(chunk0) + 1.0)
    reopened = ChunkStore.open(path)
    with pytest.raises(ValueError, match="digest"):
        reopened.chunk(0)
    assert np.array_equal(np.asarray(reopened.chunk(1)),
                          np.asarray(store.chunk(1)))   # others still fine


def test_from_blocks_rechunks_streaming():
    rng = np.random.default_rng(3)
    blocks = [rng.normal(size=(n, 3)) for n in (5, 1, 12, 0, 7)]
    store = ChunkStore.from_blocks("S", ["a", "b", "c"], iter(blocks),
                                   chunk_rows=8)
    full = np.vstack(blocks)
    assert store.n_rows == 25
    assert list(store.zone_maps.counts) == [8, 8, 8, 1]
    assert np.array_equal(store.data, full)


def test_empty_store():
    store = ChunkStore.from_blocks("E", ["a", "b"], [np.zeros((0, 2))])
    assert store.n_rows == 0
    assert store.n_chunks == 0
    assert store.data.shape == (0, 2)
    assert store.take([]).shape == (0, 2)
    assert list(store.iter_chunks()) == []
    assert stratified_chunk_sample(store, 10).shape == (0, 2)


def test_load_dataset_store_backend_bit_identical(tmp_path):
    table = load_dataset("car", n_rows=2000, seed=4)
    store = load_dataset("car", n_rows=2000, seed=4, backend="store",
                         chunk_rows=256)
    assert np.array_equal(store.data, table.data)
    assert store.provenance == table.provenance
    disk = load_dataset("car", n_rows=2000, seed=4, backend="store",
                        chunk_rows=256, directory=str(tmp_path / "d"))
    assert disk.digest == store.digest
    with pytest.raises(ValueError):
        load_dataset("car", backend="parquet")


def test_build_dataset_store_constant_memory_path(tmp_path):
    store = build_dataset_store("sdss", 3000, seed=11, chunk_rows=512,
                                directory=str(tmp_path / "sdss"))
    assert store.n_rows == 3000
    assert store.n_attributes == 8
    assert store.provenance["builder"] == "sdss"
    assert store.provenance["chunked"] is True
    reopened = ChunkStore.open(str(tmp_path / "sdss"))
    assert reopened.digest == store.digest
    assert reopened.provenance == store.provenance
    # Deterministic in (name, n_rows, seed, block_rows).
    again = build_dataset_store("sdss", 3000, seed=11, chunk_rows=512)
    assert again.digest == store.digest
    other = build_dataset_store("sdss", 3000, seed=12, chunk_rows=512)
    assert other.digest != store.digest


def test_stratified_chunk_sample_allocation(store):
    sample = stratified_chunk_sample(store, 777, seed=1)
    assert sample.shape == (777, store.n_attributes)
    assert np.array_equal(sample,
                          stratified_chunk_sample(store, 777, seed=1))
    # Every sampled row is an actual store row.
    data = store.data
    view = {tuple(r) for r in data[:, :2]}
    assert all(tuple(r) in view for r in sample[:, :2])
    # Projection and capping.
    small = stratified_chunk_sample(store, 10 ** 9, columns=[0, 2], seed=2)
    assert small.shape == (store.n_rows, 2)
    # Generator seeds continue one stream.
    rng = np.random.default_rng(5)
    a = stratified_chunk_sample(store, 100, seed=rng)
    b = stratified_chunk_sample(store, 100, seed=rng)
    assert not np.array_equal(a, b)


def test_cluster_by_preserves_rows_and_enables_pruning():
    from repro.geometry import BoxRegion
    from repro.store import ChunkScan

    rng = np.random.default_rng(6)
    data = rng.uniform(0, 100, size=(4000, 3))
    data[rng.choice(4000, size=30, replace=False), 0] = np.nan
    from repro.data.schema import Table
    store = Table("T", ["x", "y", "z"], data).to_store(chunk_rows=128)
    clustered = store.cluster_by("y", bins=16)
    # Same rows as a multiset (order changes — that is the point).
    def sort_rows(a):
        return a[np.lexsort(np.nan_to_num(a, nan=1e18).T)]
    assert clustered.n_rows == store.n_rows
    assert np.array_equal(sort_rows(np.array(clustered.data)),
                          sort_rows(data), equal_nan=True)
    assert clustered.provenance["clustered_by"] == "y"
    # A selective band on the clustered column now prunes most chunks.
    region = BoxRegion([0.0, 40.0, 0.0], [100.0, 45.0, 100.0])
    before = ChunkScan(store, region).stats
    after = ChunkScan(clustered, region).stats
    assert before["chunks_pruned"] == 0
    assert after["chunks_pruned"] > 0.7 * after["chunks"]
    assert np.array_equal(
        ChunkScan(clustered, region).row_mask(),
        region.contains(clustered.data))


def test_cluster_by_keeps_nonfinite_rows(tmp_path):
    # +-inf column values collapse banding to the single-bin fallback
    # (no finite range to split) but nothing is silently dropped —
    # the multiset is preserved, with NaN rows in the trailing bucket.
    from repro.data.schema import Table
    data = np.column_stack([
        np.array([1.0, np.inf, -np.inf, np.nan, 2.0, 3.0]),
        np.arange(6, dtype=np.float64)])
    store = Table("NF", ["x", "tag"], data).to_store(chunk_rows=2)
    clustered = store.cluster_by("x", bins=4,
                                 directory=str(tmp_path / "nf"))
    assert clustered.n_rows == 6
    assert np.array_equal(np.sort(np.array(clustered.data[:, 1])),
                          np.arange(6.0))
    tags = clustered.data[:, 1]
    x = clustered.data[:, 0]
    assert np.isnan(x[-1]) and tags[-1] == 3.0      # NaN row last


def test_cluster_by_keeps_exact_maximum_rows():
    # Rows sitting exactly on the global maximum land in the last band
    # (the outer edges are opened to +-inf), never dropped.
    from repro.data.schema import Table
    data = np.column_stack([np.array([0.0, 5.0, 10.0, 10.0]),
                            np.arange(4, dtype=np.float64)])
    store = Table("MX", ["x", "tag"], data).to_store(chunk_rows=2)
    clustered = store.cluster_by("x", bins=4)
    assert clustered.n_rows == 4
    assert np.array_equal(np.sort(np.array(clustered.data[:, 1])),
                          np.arange(4.0))
    assert np.array_equal(clustered.data[-2:, 0], [10.0, 10.0])


def test_store_fit_offline_rejects_nan_columns(store_config):
    from repro.core import LTE
    from repro.data.schema import Table

    rng = np.random.default_rng(1)
    data = rng.uniform(size=(500, 4))
    data[5, 2] = np.nan
    store = Table("N", ["a", "b", "c", "d"], data).to_store(chunk_rows=64)
    assert list(store.column_has_nan()) == [False, False, True, False]
    lte = LTE(store_config)
    with pytest.raises(ValueError, match="NaN"):
        lte.fit_offline(store)


def test_cluster_by_degenerate_column(tmp_path):
    data = np.column_stack([np.full(50, 3.0),
                            np.arange(50, dtype=np.float64)])
    from repro.data.schema import Table
    store = Table("D", ["k", "v"], data).to_store(chunk_rows=8)
    clustered = store.cluster_by("k", directory=str(tmp_path / "c"))
    assert clustered.n_rows == 50
    assert np.array_equal(np.sort(np.array(clustered.data[:, 1])),
                          np.arange(50.0))


def test_default_chunk_rows_round_number():
    assert DEFAULT_CHUNK_ROWS == 65_536
