"""Zone-map pruning correctness: pruned + exact == full exact, bit for bit.

The scan planner's contract is that a pruned chunk provably contains no
region member, so chunk-pruned evaluation must equal a full scan exactly
— for every region type, including NaN-polluted columns, single-row
chunks, empty ``(0, d)`` tables and degenerate hull geometry.  The fuzz
draws clustered (zone-map-friendly) and adversarial (shuffled) data,
random chunk sizes and random regions, and checks both the equality and
the non-vacuity of the plan (selective regions on sorted data must
actually prune).
"""

import numpy as np
import pytest

from repro.data.schema import Table
from repro.explore.query_synthesis import SynthesizedQuery
from repro.geometry import (BoxRegion, ConjunctiveRegion, Hull, UnionRegion)
from repro.geometry.regions import ScaledRegion
from repro.ml.scaler import MinMaxScaler
from repro.store import ChunkScan, region_bounds, scan_region

pytestmark = pytest.mark.store


def make_store(data, chunk_rows, name="fuzz"):
    columns = ["c{}".format(i) for i in range(data.shape[1])]
    return Table(name, columns, data).to_store(chunk_rows=chunk_rows)


def full_mask(region, data, columns=None):
    """Reference: the unpruned full-table membership pass."""
    projected = data if columns is None else data[:, list(columns)]
    if hasattr(region, "contains"):
        return np.asarray(region.contains(projected), dtype=bool)
    return np.asarray(region.predicate(projected)) == 1


def assert_scan_parity(store, region, data, columns=None):
    scan = ChunkScan(store, region, columns=columns)
    got = scan.row_mask()
    want = full_mask(region, data, columns=columns)
    assert np.array_equal(got, want)
    # The stronger property behind the equality: no pruned chunk holds a
    # member (pruning never drops an in-region point).
    keep = scan.chunk_mask()
    for ci in np.flatnonzero(~keep):
        lo = int(store.offsets[ci])
        hi = int(store.offsets[ci + 1])
        assert not want[lo:hi].any()
    return scan


def clustered_data(rng, n, d, nan_ratio=0.0):
    """Rows with chunk locality: cluster id increases along the table."""
    k = int(rng.integers(3, 7))
    centers = rng.uniform(-5, 5, size=(k, d))
    spread = rng.uniform(0.05, 0.4)
    counts = rng.multinomial(n, np.ones(k) / k)
    rows = np.vstack([c + rng.normal(0, spread, size=(m, d))
                      for c, m in zip(centers, counts) if m]) \
        if n else np.zeros((0, d))
    if nan_ratio and n:
        hit = rng.random(size=rows.shape) < nan_ratio
        rows = np.where(hit, np.nan, rows)
    return rows


def random_hull_union(rng, data, d, parts):
    finite = data[~np.isnan(data).any(axis=1)]
    pool = finite if len(finite) >= 4 else rng.uniform(-5, 5, size=(32, d))
    hulls = []
    for _ in range(parts):
        take = int(rng.integers(d + 1, min(12, len(pool)) + 1))
        idx = rng.choice(len(pool), size=take, replace=False)
        hulls.append(Hull(pool[idx] + rng.normal(0, 0.05, size=(take, d))))
    return UnionRegion(hulls)


@pytest.mark.parametrize("chunk_rows", [1, 7, 64])
@pytest.mark.parametrize("nan_ratio", [0.0, 0.15])
def test_union_region_fuzz(chunk_rows, nan_ratio):
    rng = np.random.default_rng(100 * chunk_rows + int(nan_ratio * 10))
    for trial in range(8):
        d = int(rng.integers(1, 4))
        n = int(rng.integers(0, 400))
        data = clustered_data(rng, n, d, nan_ratio=nan_ratio)
        store = make_store(data, chunk_rows)
        region = random_hull_union(rng, data, d, parts=int(rng.integers(1, 4)))
        assert_scan_parity(store, region, data)


def test_single_hull_and_box():
    rng = np.random.default_rng(7)
    data = clustered_data(rng, 500, 2)
    store = make_store(data, 16)
    hull = Hull(data[:40])
    assert_scan_parity(store, hull, data)
    lo, hi = data.min(axis=0), data.max(axis=0)
    box = BoxRegion(lo + 0.7 * (hi - lo), hi)
    scan = assert_scan_parity(store, box, data)
    assert scan.stats["chunks_pruned"] > 0   # selective box on clustered data


def test_column_projection_scan():
    rng = np.random.default_rng(11)
    data = clustered_data(rng, 600, 4)
    store = make_store(data, 32)
    region = random_hull_union(rng, data[:, [3, 1]], 2, parts=2)
    assert_scan_parity(store, region, data, columns=(3, 1))
    with pytest.raises(ValueError):
        ChunkScan(store, region, columns=(0, 1, 2))


def test_conjunctive_region_fuzz():
    rng = np.random.default_rng(23)
    for trial in range(6):
        data = clustered_data(rng, int(rng.integers(50, 400)), 4)
        store = make_store(data, int(rng.integers(1, 40)))
        region = ConjunctiveRegion([
            ((0, 2), random_hull_union(rng, data[:, [0, 2]], 2, parts=2)),
            ((1, 3), random_hull_union(rng, data[:, [1, 3]], 2, parts=1)),
        ])
        assert_scan_parity(store, region, data)


def test_scaled_region_matches_raw_membership():
    rng = np.random.default_rng(31)
    for trial in range(6):
        data = clustered_data(rng, 400, 2)
        store = make_store(data, 13)
        scaler = MinMaxScaler().fit(data)
        scaled = scaler.transform(data)
        inner = random_hull_union(rng, scaled, 2, parts=2)
        region = ScaledRegion(inner, scaler)
        assert_scan_parity(store, region, data)


def test_scaled_region_clip_limits_are_conservative():
    # A scaled region touching the [0, 1] clip limits must keep every
    # chunk whose raw values clip into it — including values far outside
    # the scaler's fitted range.
    data = np.concatenate([np.linspace(0, 10, 50),
                           [1e6, -1e6]])[:, None]   # wild outliers
    scaler = MinMaxScaler().fit(np.linspace(0, 10, 50)[:, None])
    store = make_store(data, 4)
    region = ScaledRegion(UnionRegion([Hull(np.array([[-0.5], [0.2]]))]),
                          scaler)
    assert_scan_parity(store, region, data)
    region = ScaledRegion(UnionRegion([Hull(np.array([[0.9], [1.7]]))]),
                          scaler)
    assert_scan_parity(store, region, data)


def test_synthesized_query_scan():
    rng = np.random.default_rng(43)
    data = clustered_data(rng, 500, 3)
    store = make_store(data, 25)
    lo, hi = data.min(axis=0), data.max(axis=0)
    boxes = [(lo + 0.6 * (hi - lo), hi),
             (lo, lo + 0.1 * (hi - lo))]
    query = SynthesizedQuery(["c0", "c1", "c2"], boxes, fidelity=1.0)
    scan = assert_scan_parity(store, query, data)
    assert scan.stats["prunable"]
    empty = SynthesizedQuery(["c0", "c1", "c2"], [], fidelity=1.0)
    scan = ChunkScan(store, empty)
    assert not scan.chunk_mask().any()       # zero boxes -> prune all
    assert not scan.row_mask().any()


def test_all_nan_column_chunks_prune_safely():
    data = np.array([[np.nan, 1.0],
                     [np.nan, 2.0],
                     [0.5, 0.5],
                     [0.6, 0.6]])
    store = make_store(data, 2)   # chunk 0 has an all-NaN column
    region = UnionRegion([Hull(np.array([[0.0, 0.0], [1.0, 1.0],
                                         [0.0, 1.0]]))])
    scan = assert_scan_parity(store, region, data)
    assert not scan.chunk_mask()[0]          # NaN-column chunk pruned


def test_empty_table_scan():
    store = make_store(np.zeros((0, 3)), 8)
    region = BoxRegion([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
    assert scan_region(store, region).shape == (0,)
    scan = ChunkScan(store, region)
    assert scan.stats["chunks"] == 0
    assert scan.stats["rows_total"] == 0


def test_unknown_region_scans_everything():
    class Opaque:
        dim = 2

        def contains(self, points):
            points = np.atleast_2d(np.asarray(points, dtype=np.float64))
            return points[:, 0] > 0

    rng = np.random.default_rng(3)
    data = rng.normal(size=(100, 2))
    store = make_store(data, 10)
    assert region_bounds(Opaque()) is None
    scan = assert_scan_parity(store, Opaque(), data)
    assert scan.chunk_mask().all()
    assert not scan.stats["prunable"]


def test_pruning_actually_skips_on_sorted_data():
    # The load-bearing use case: data with chunk locality + a selective
    # region -> most chunks never touched.
    rng = np.random.default_rng(77)
    data = rng.uniform(0, 100, size=(5000, 2))
    data = data[np.argsort(data[:, 0])]
    store = make_store(data, 100)
    region = BoxRegion([10.0, 0.0], [12.0, 100.0])
    scan = assert_scan_parity(store, region, data)
    stats = scan.stats
    assert stats["chunks_pruned"] > 0.9 * stats["chunks"]
    assert stats["rows_scanned"] < 0.1 * stats["rows_total"]
