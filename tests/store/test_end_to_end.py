"""Store-backed prediction is bit-identical to in-memory prediction.

The acceptance contract of the chunked substrate: for every variant
(basic / meta / meta_star), predicting a session over a chunk store —
sequentially, through the serving engine, or out of core from disk —
produces the exact bits the dense in-memory path produces, while the
zone-map planner is free to skip chunks.  Also covers the store-backed
offline phase (bounded-memory fit), scoring helpers, retrieval and the
provenance recorded in checkpoint manifests.
"""

import numpy as np
import pytest

from repro.data import make_car
from repro.explore.session import (run_concurrent_explorations,
                                   run_lte_exploration, score_session)
from repro.serve import SessionManager

pytestmark = [pytest.mark.store, pytest.mark.smoke]


@pytest.fixture(scope="module")
def eval_store(store_table):
    return store_table.to_store(chunk_rows=256)


@pytest.mark.parametrize("variant", ["basic", "meta", "meta_star"])
def test_sequential_store_parity(store_lte, store_subspaces, store_table,
                                 eval_store, make_oracle, variant):
    mem = run_lte_exploration(store_lte, make_oracle(seed=5),
                              store_table.data, variant=variant,
                              subspaces=store_subspaces, seed=11)
    via_store = run_lte_exploration(store_lte, make_oracle(seed=5),
                                    eval_store, variant=variant,
                                    subspaces=store_subspaces, seed=11)
    assert np.array_equal(mem.predictions, via_store.predictions)
    assert np.array_equal(mem.ground_truth, via_store.ground_truth)
    assert mem.f1 == via_store.f1
    assert mem.labels_used == via_store.labels_used


def test_predict_store_prunes_but_matches(store_lte, store_subspaces,
                                          store_table, eval_store,
                                          make_oracle):
    from repro.store.scan import optimizer_chunk_keep

    oracle = make_oracle(seed=9)
    session = store_lte.start_session(variant="meta_star",
                                      subspaces=store_subspaces, seed=3)
    for subspace, tuples in session.initial_tuples().items():
        session.submit_labels(subspace, oracle.label_subspace(subspace,
                                                              tuples))
    dense = session.predict(store_table.data)
    chunked = session.predict_store(eval_store)
    assert np.array_equal(dense, chunked)
    # The pruning hook is live for meta_star sessions.
    any_prunable = False
    for subspace, subsession in session._subsessions.items():
        keep = optimizer_chunk_keep(eval_store, subspace.columns,
                                    subsession.state.scaler,
                                    subsession.optimizer)
        any_prunable |= keep is not None
    assert any_prunable


def test_manager_store_parity_and_chunk_cache(store_lte, store_subspaces,
                                              store_table, eval_store,
                                              make_oracle):
    manager = SessionManager(store_lte)
    oracles = make_oracle(seed=21, count=3)
    mem = run_concurrent_explorations(store_lte, oracles, store_table.data,
                                      variant="meta_star",
                                      subspaces=store_subspaces,
                                      manager=manager)
    via_store = run_concurrent_explorations(
        store_lte, make_oracle(seed=21, count=3), eval_store,
        variant="meta_star", subspaces=store_subspaces, manager=manager)
    for a, b in zip(mem, via_store):
        assert np.array_equal(a.predictions, b.predictions)
        assert a.f1 == b.f1

    # Per-chunk result caching: a repeated scan over an unchanged model
    # is served from the prediction cache, keyed by chunk digests.
    oracle = make_oracle(seed=22)
    sid = manager.open_session(variant="meta_star",
                               subspaces=store_subspaces)
    for subspace, tuples in manager.initial_tuples(sid).items():
        manager.submit_labels(sid, subspace,
                              oracle.label_subspace(subspace, tuples))
    first = manager.predict_store(sid, eval_store)
    hits_before = manager.stats["cache"]["hits"]
    second = manager.predict_store(sid, eval_store)
    assert np.array_equal(first, second)
    # The repeat is served wholesale from the session's freshness
    # watermark: same store version, same model versions — zero chunks
    # touched.
    assert manager.last_store_scan["chunk_evals"] == 0
    assert manager.last_store_scan["sessions_served_from_mark"] == 1
    # With the watermark dropped (e.g. a restored manager), the rescan
    # falls back to the per-chunk digest-keyed prediction cache.
    manager._store_marks.clear()
    third = manager.predict_store(sid, eval_store)
    assert np.array_equal(first, third)
    assert manager.stats["cache"]["hits"] > hits_before
    assert np.array_equal(first, manager.predict(sid, store_table.data))
    manager.close_session(sid)


@pytest.mark.parametrize("variant", ["basic", "meta_star"])
def test_store_backed_offline_fit_end_to_end(store_config, store_table,
                                             variant):
    from repro.bench.workloads import convex_oracles
    from repro.core import LTE

    store = store_table.to_store(chunk_rows=256)
    lte = LTE(store_config)
    lte.fit_offline(store, subspaces=None)
    subspaces = list(lte.states)[:2]
    oracle = convex_oracles(lte, subspaces, 1, psi_choices=(12, 10),
                            seed=5)[0]
    result = run_lte_exploration(lte, oracle, store, variant=variant,
                                 subspaces=subspaces, seed=11)
    assert result.predictions.shape == (store.n_rows,)
    assert 0.0 <= result.f1 <= 1.0
    # The per-subspace working set is bounded by store_sample_rows,
    # not the table.
    for state in lte.states.values():
        assert len(state.data) <= store_config.store_sample_rows
    # Scoring and retrieval ride the store too.
    session = lte.start_session(variant=variant, subspaces=subspaces,
                                seed=11)
    for subspace, tuples in session.initial_tuples().items():
        session.submit_labels(subspace,
                              oracle.label_subspace(subspace, tuples))
    scored = score_session(session, oracle, store)
    assert 0.0 <= scored.f1 <= 1.0
    retrieved = session.retrieve(limit=7)
    assert retrieved.shape[1] == store.n_attributes
    assert len(retrieved) <= 7


def test_pruning_drops_chunks_on_clustered_store_bit_identically(
        store_config, store_table):
    """The load-bearing case: a year-clustered store + Meta* sessions.

    With chunk locality the planner must actually skip chunks (not just
    degenerate to a full scan) while staying bit-identical to the dense
    path — both sequentially and through the serving engine.
    """
    from repro.bench.workloads import convex_oracles
    from repro.core import LTE
    from repro.data.schema import Table
    from repro.store.scan import session_chunk_keep

    order = np.argsort(store_table.data[:, 2])     # cluster by 'year'
    sorted_table = Table("CAR", store_table.attributes,
                         store_table.data[order])
    store = sorted_table.to_store(chunk_rows=64)
    lte = LTE(store_config)
    lte.fit_offline(sorted_table)
    subspaces = list(lte.states)[:2]
    oracle = convex_oracles(lte, subspaces, 1, psi_choices=(8, 6),
                            seed=9)[0]
    session = lte.start_session(variant="meta_star", subspaces=subspaces,
                                seed=3)
    for subspace, tuples in session.initial_tuples().items():
        session.submit_labels(subspace,
                              oracle.label_subspace(subspace, tuples))
    keep = session_chunk_keep(store, session._subsessions)
    assert (~keep).sum() > 0                       # pruning really fires
    dense = session.predict(sorted_table.data)
    assert np.array_equal(dense, session.predict_store(store))

    manager = SessionManager(lte)
    sid = manager.open_session(variant="meta_star", subspaces=subspaces,
                               seed=3)
    for subspace, tuples in manager.initial_tuples(sid).items():
        manager.submit_labels(sid, subspace,
                              oracle.label_subspace(subspace, tuples))
    assert np.array_equal(dense, manager.predict_store(sid, store))
    manager.close_session(sid)


def test_out_of_core_disk_store_parity(tmp_path, store_lte, store_subspaces,
                                       store_table, make_oracle):
    disk = store_table.to_store(chunk_rows=256,
                                directory=str(tmp_path / "car"))
    mem = run_lte_exploration(store_lte, make_oracle(seed=33),
                              store_table.data, variant="meta_star",
                              subspaces=store_subspaces, seed=2)
    ooc = run_lte_exploration(store_lte, make_oracle(seed=33), disk,
                              variant="meta_star",
                              subspaces=store_subspaces, seed=2)
    assert np.array_equal(mem.predictions, ooc.predictions)
    assert np.array_equal(mem.ground_truth, ooc.ground_truth)


def test_checkpoint_manifest_records_provenance(tmp_path, store_config,
                                                store_table):
    from repro.core import LTE
    from repro.persist import save_pretrained
    from repro.persist.checkpoint import inspect_checkpoint

    store = store_table.to_store(chunk_rows=512)
    lte = LTE(store_config)
    lte.fit_offline(store, subspaces=None, train=False)
    save_pretrained(str(tmp_path / "ckpt"), lte)
    meta = inspect_checkpoint(str(tmp_path / "ckpt"))["meta"]
    assert meta["dataset"]["builder"] == "car"
    assert meta["dataset"]["n_rows"] == store.n_rows
    assert meta["dataset"]["store_digest"] == store.digest

    # In-memory tables record the builder provenance alone.
    lte_mem = LTE(store_config)
    lte_mem.fit_offline(make_car(n_rows=1200, seed=8), train=False)
    save_pretrained(str(tmp_path / "ckpt-mem"), lte_mem)
    meta = inspect_checkpoint(str(tmp_path / "ckpt-mem"))["meta"]
    assert meta["dataset"] == {"builder": "car", "n_rows": 1200, "seed": 8}
