"""Streaming ingest: appendable stores, crash safety, drift detection.

The append contract: ``append_blocks`` must be indistinguishable —
rows, zone maps, chunk digests, store digest — from a one-shot
``from_blocks`` build over the concatenated rows, while never touching
the bytes of already-closed chunks.  This file fuzzes that equivalence
over arbitrary split patterns, exercises the crash-safe manifest
commit, the fail-fast corruption checks, the stale-materialization
regressions, the atomic in-place ``cluster_by`` swap and the
zone-map-driven :class:`~repro.store.FreshnessMonitor`.
"""

import json
import os

import numpy as np
import pytest

from repro.store import (ChunkStore, FreshnessMonitor, StoreCorruptedError,
                         StoreReadOnlyError)

pytestmark = pytest.mark.ingest

ATTRS = ["a", "b", "c"]


def make_rows(n, seed=0, nan_frac=0.0):
    rng = np.random.default_rng(seed)
    rows = rng.normal(size=(n, len(ATTRS))) * 10.0
    if nan_frac:
        rows[rng.random(rows.shape) < nan_frac] = np.nan
    return rows


def build(rows, chunk_rows=7, directory=None):
    return ChunkStore.from_blocks("T", ATTRS, [rows], chunk_rows=chunk_rows,
                                  directory=directory)


def read_manifest(directory):
    with open(os.path.join(directory, "store.json")) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Append equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("on_disk", [False, True])
@pytest.mark.parametrize("seed", range(6))
def test_append_equivalence_fuzz(tmp_path, seed, on_disk):
    """Any split of the rows into appends is bit-identical to one shot."""
    rng = np.random.default_rng(100 + seed)
    total = int(rng.integers(2, 140))
    chunk_rows = int(rng.integers(1, 17))
    rows = make_rows(total, seed=seed, nan_frac=0.1)
    cuts = np.sort(rng.integers(0, total + 1,
                                size=int(rng.integers(1, 6)))).tolist()
    bounds = sorted({0, *cuts, total})
    directory = str(tmp_path / "grown") if on_disk else None

    grown = ChunkStore.from_blocks("T", ATTRS, [rows[:bounds[1]]],
                                   chunk_rows=chunk_rows,
                                   directory=directory)
    for lo, hi in zip(bounds[1:], bounds[2:]):
        batch = rows[lo:hi]
        closed = list(grown.zone_maps.digests[:grown.closed_chunks])
        split = int(rng.integers(0, len(batch) + 1))
        added = grown.append_blocks([batch[:split], batch[split:]])
        assert added == hi - lo
        # Closed chunks are never rewritten: digests stay bit-stable.
        assert list(grown.zone_maps.digests[:len(closed)]) == closed

    one_shot = ChunkStore.from_blocks("T", ATTRS, [rows],
                                      chunk_rows=chunk_rows)
    assert grown.digest == one_shot.digest
    assert grown.n_chunks == one_shot.n_chunks
    assert list(grown.zone_maps.digests) == list(one_shot.zone_maps.digests)
    assert np.array_equal(grown.zone_maps.mins, one_shot.zone_maps.mins,
                          equal_nan=True)
    assert np.array_equal(grown.zone_maps.maxs, one_shot.zone_maps.maxs,
                          equal_nan=True)
    assert np.array_equal(grown.data, rows, equal_nan=True)
    assert grown.store_version == 1 + sum(1 for lo, hi in
                                          zip(bounds[1:], bounds[2:])
                                          if hi > lo)
    if on_disk:
        # A reopened appended store passes full digest verification.
        reopened = ChunkStore.open(directory)
        assert reopened.digest == one_shot.digest
        assert reopened.store_version == grown.store_version
        assert reopened.uid == grown.uid
        for i in range(reopened.n_chunks):      # digest-checked loads
            assert np.array_equal(reopened.chunk(i), grown.chunk(i),
                                  equal_nan=True)


def test_empty_append_is_a_noop():
    store = build(make_rows(20, seed=1))
    version, digest = store.store_version, store.digest
    assert store.append_blocks([]) == 0
    assert store.append_blocks([np.zeros((0, len(ATTRS)))]) == 0
    assert store.store_version == version
    assert store.digest == digest


def test_crash_at_commit_point_preserves_the_old_version(tmp_path,
                                                         monkeypatch):
    """A crash before the store.json rename leaves the prior version
    fully intact — on disk *and* in the appending handle."""
    directory = str(tmp_path / "s")
    store = build(make_rows(40, seed=3), chunk_rows=16,
                  directory=directory)
    version, digest = store.store_version, store.digest

    real_replace = os.replace

    def exploding_replace(src, dst):
        if str(dst).endswith("store.json"):
            raise OSError("simulated crash at the commit point")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError, match="simulated crash"):
        store.append_blocks([make_rows(10, seed=4)])
    monkeypatch.undo()

    # The handle rolled back; the failed append left no trace.
    assert store.store_version == version
    assert store.digest == digest
    assert store.n_rows == 40
    reopened = ChunkStore.open(directory)
    assert reopened.store_version == version
    assert reopened.digest == digest
    # A later append (no fault) commits and the directory round-trips.
    assert store.append_blocks([make_rows(10, seed=4)]) == 10
    assert ChunkStore.open(directory).digest == store.digest


def test_v1_layout_opens_read_only_and_upgrades_via_save(tmp_path):
    directory = str(tmp_path / "v1")
    store = build(make_rows(30, seed=5), chunk_rows=8, directory=directory)
    manifest = read_manifest(directory)
    # Doctor the directory back to the pre-append v1 layout.
    os.rename(os.path.join(directory, manifest.pop("zone_file")),
              os.path.join(directory, "zonemaps.npz"))
    for key in ("uid", "store_version", "chunk_files"):
        manifest.pop(key)
    manifest["format_version"] = 1
    with open(os.path.join(directory, "store.json"), "w") as fh:
        json.dump(manifest, fh)

    v1 = ChunkStore.open(directory)
    assert v1.read_only
    assert v1.uid.startswith("v1:")
    assert v1.digest == store.digest
    with pytest.raises(StoreReadOnlyError):
        v1.append_blocks([make_rows(4, seed=6)])
    upgraded = v1.save(str(tmp_path / "v2"))
    assert not upgraded.read_only
    assert upgraded.digest == v1.digest
    assert upgraded.append_blocks([make_rows(4, seed=6)]) == 4


def test_refresh_adopts_appends_from_another_handle(tmp_path):
    directory = str(tmp_path / "s")
    writer = build(make_rows(50, seed=10), chunk_rows=16,
                   directory=directory)
    reader = ChunkStore.open(directory)
    first = reader.chunk(0)
    writer.append_blocks([make_rows(30, seed=11)])
    assert reader.n_rows == 50                  # not yet refreshed
    reader.refresh()
    assert reader.n_rows == 80
    assert reader.store_version == writer.store_version
    assert reader.digest == writer.digest
    assert reader.chunk(0) is first             # closed-prefix mmap kept
    assert np.array_equal(reader.data, writer.data, equal_nan=True)


# ----------------------------------------------------------------------
# Fail-late corruption (now fail-fast)
# ----------------------------------------------------------------------
@pytest.fixture()
def disk_store(tmp_path):
    return build(make_rows(60, seed=7), chunk_rows=16,
                 directory=str(tmp_path / "s"))


def _chunk_path(store, index=1):
    return os.path.join(store.directory,
                        read_manifest(store.directory)["chunk_files"][index])


def test_deleted_chunk_file_fails_at_open(disk_store):
    os.unlink(_chunk_path(disk_store))
    with pytest.raises(StoreCorruptedError, match="missing"):
        ChunkStore.open(disk_store.directory)


def test_truncated_chunk_file_fails_at_open(disk_store):
    path = _chunk_path(disk_store)
    with open(path, "r+b") as fh:
        fh.truncate(os.path.getsize(path) - 17)
    with pytest.raises(StoreCorruptedError, match="truncated"):
        ChunkStore.open(disk_store.directory)


def test_bit_flip_fails_at_chunk_load(disk_store):
    path = _chunk_path(disk_store)
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:               # same size: header passes
        fh.seek(size - 9)
        byte = fh.read(1)
        fh.seek(size - 9)
        fh.write(bytes([byte[0] ^ 0xFF]))
    tampered = ChunkStore.open(disk_store.directory)   # headers still fine
    tampered.chunk(0)                                  # intact chunk loads
    with pytest.raises(StoreCorruptedError, match="digest"):
        tampered.chunk(1)


# ----------------------------------------------------------------------
# Stale materialization caches
# ----------------------------------------------------------------------
def test_append_invalidates_data_digest_and_offsets():
    store = build(make_rows(30, seed=12), chunk_rows=8)
    data_before = store.data
    digest_before = store.digest
    offsets_before = store.offsets
    assert len(data_before) == 30 and offsets_before[-1] == 30

    store.append_blocks([make_rows(10, seed=13)])
    # Mutate-after-materialize must never serve stale rows or identity.
    assert store.n_rows == 40
    assert len(store.data) == 40
    assert store.offsets[-1] == 40
    assert store.digest != digest_before
    assert np.array_equal(store.data[:30], data_before, equal_nan=True)


# ----------------------------------------------------------------------
# cluster_by rewrite safety
# ----------------------------------------------------------------------
def _sorted_rows(data):
    data = np.asarray(data)
    return data[np.lexsort(np.nan_to_num(data, nan=1e300).T)]


def test_cluster_by_into_own_directory_swaps_atomically(tmp_path):
    directory = str(tmp_path / "s")
    store = build(make_rows(200, seed=14), chunk_rows=16,
                  directory=directory)
    rows_before = np.array(store.data)
    first = store.chunk(0)

    clustered = store.cluster_by("a", directory=directory)

    # Row content is preserved exactly as a multiset.
    assert np.array_equal(_sorted_rows(clustered.data),
                          _sorted_rows(rows_before), equal_nan=True)
    # The source detached instead of having its files truncated under
    # its mmaps: it still serves its old rows and can never write again.
    assert store.directory is None and store.read_only
    assert np.array_equal(store.chunk(0), first, equal_nan=True)
    with pytest.raises(StoreReadOnlyError):
        store.append_blocks([make_rows(4, seed=15)])
    # The swapped directory holds exactly the manifest-referenced files.
    manifest = read_manifest(directory)
    assert set(os.listdir(directory)) == \
        {"store.json", manifest["zone_file"], *manifest["chunk_files"]}
    assert ChunkStore.open(directory).digest == clustered.digest


def test_cluster_rewrite_cleans_stale_tail_files(tmp_path):
    """Rewriting a directory with a *smaller* store (fewer chunks) must
    not leave the old store's tail chunk files behind."""
    directory = str(tmp_path / "s")
    build(make_rows(80, seed=16), chunk_rows=4,
          directory=directory)                      # 20 chunk files
    mem = build(make_rows(80, seed=17), chunk_rows=40)
    clustered = mem.cluster_by("a", directory=directory)   # 2 chunk files
    assert clustered.n_chunks < 20
    manifest = read_manifest(directory)
    assert set(os.listdir(directory)) == \
        {"store.json", manifest["zone_file"], *manifest["chunk_files"]}
    reopened = ChunkStore.open(directory)           # validates
    assert reopened.digest == clustered.digest


# ----------------------------------------------------------------------
# Freshness monitoring off the zone maps
# ----------------------------------------------------------------------
def test_freshness_monitor_flags_range_escape():
    store = build(make_rows(40, seed=18), chunk_rows=8)
    lo, hi = store.column_bounds([0, 1])
    monitor = FreshnessMonitor(threshold=0.2)
    monitor.register("s01", [0, 1], lo, hi)

    assert monitor.observe(store) == {"s01": 0.0}   # fitted data: inside
    assert monitor.drifted() == []

    inside = np.array(store.data[:8])               # a re-ingest: inside
    assert store.append_blocks([inside]) == 8
    scores = monitor.observe(store)
    assert scores["s01"] == 0.0 and monitor.drifted() == []

    escaped = make_rows(8, seed=19)
    escaped[:, 0] = hi[0] + (hi[0] - lo[0])         # a full span outside
    store.append_blocks([escaped])
    scores = monitor.observe(store)
    assert scores["s01"] > 0.9
    assert monitor.drifted() == ["s01"]
    assert monitor.report()["s01"] >= scores["s01"]

    # Re-registering (after a refresh refit the scaler) resets the score.
    new_lo, new_hi = store.column_bounds([0, 1])
    monitor.register("s01", [0, 1], new_lo, new_hi)
    assert monitor.drifted() == []

    # One monitor watches one store.
    with pytest.raises(ValueError, match="bound to store uid"):
        monitor.observe(build(make_rows(10, seed=20)))


def test_freshness_monitor_scores_only_new_chunks():
    store = build(make_rows(40, seed=21), chunk_rows=8)
    lo, hi = store.column_bounds([0])
    monitor = FreshnessMonitor()
    monitor.register("k", [0], lo, hi)
    monitor.observe(store)
    # No appends since the last observe: nothing new to score.
    assert monitor.observe(store) == {}
