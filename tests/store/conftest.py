"""Shared fixtures for the store tests: one tiny trained LTE system."""

import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.data import make_car
from repro.data.subspaces import random_decomposition


@pytest.fixture(scope="session")
def store_config():
    return LTEConfig(budget=20, ku=20, kq=25, n_tasks=5,
                     meta=MetaHyperParams(epochs=1, local_steps=2,
                                          batch_size=3, pretrain_epochs=1),
                     basic_steps=10, online_steps=3,
                     store_sample_rows=2000)


@pytest.fixture(scope="session")
def store_table():
    return make_car(n_rows=1800, seed=41)


@pytest.fixture(scope="session")
def store_subspaces(store_table, store_config):
    return random_decomposition(store_table,
                                dim=store_config.subspace_dim,
                                seed=store_config.seed)[:2]


@pytest.fixture(scope="session")
def store_lte(store_table, store_config, store_subspaces):
    lte = LTE(store_config)
    lte.fit_offline(store_table, subspaces=store_subspaces)
    return lte


@pytest.fixture(scope="session")
def make_oracle(store_lte, store_subspaces):
    from repro.bench.workloads import convex_oracles

    def build(seed=5, count=1):
        oracles = convex_oracles(store_lte, store_subspaces, count,
                                 psi_choices=(12, 10), seed=seed)
        return oracles if count > 1 else oracles[0]

    return build
