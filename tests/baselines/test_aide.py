"""Tests for the AIDE decision-tree baseline."""

import numpy as np
import pytest

from repro.baselines import AIDEExplorer
from repro.explore.metrics import f1_score
from repro.geometry import BoxRegion


REGION = BoxRegion([2000.0, 30.0], [6000.0, 70.0])  # raw, non-unit scales


def rows(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    return np.column_stack([rng.uniform(0, 10_000, n),
                            rng.uniform(0, 100, n)])


def label_fn(points):
    return REGION.label(points)


class TestAIDE:
    def test_learns_axis_aligned_region(self):
        explorer = AIDEExplorer(budget=40, pool_size=600, seed=0)
        explorer.explore(rows(), label_fn)
        test = rows(seed=9)
        f1 = f1_score(REGION.label(test), explorer.predict(test))
        assert f1 > 0.6  # AIDE's home turf: axis-aligned linear regions

    def test_predict_before_explore(self):
        with pytest.raises(RuntimeError):
            AIDEExplorer().predict(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            AIDEExplorer().relevant_boxes()

    def test_relevant_boxes_in_raw_coordinates(self):
        explorer = AIDEExplorer(budget=30, pool_size=600, seed=1)
        explorer.explore(rows(), label_fn)
        boxes = explorer.relevant_boxes()
        assert boxes
        for lo, hi in boxes:
            assert (lo <= hi + 1e-9).all()
            assert hi[0] <= 10_000 + 1e-6  # raw attribute scale preserved

    def test_binary_predictions(self):
        explorer = AIDEExplorer(budget=20, pool_size=400, seed=2)
        explorer.explore(rows(1000), label_fn)
        preds = explorer.predict(rows(100, seed=3))
        assert set(np.unique(preds)) <= {0, 1}

    def test_labels_used_recorded(self):
        explorer = AIDEExplorer(budget=15, pool_size=300, seed=3)
        explorer.explore(rows(800), label_fn)
        assert explorer.labels_used_ == 15
