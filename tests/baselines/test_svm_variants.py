"""Tests for the per-subspace SVM / SVMr competitors."""

import numpy as np
import pytest

from repro.baselines import SubspaceSVMExplorer
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.data import make_sdss
from repro.geometry import BoxRegion


@pytest.fixture(scope="module")
def prepared_lte():
    table = make_sdss(n_rows=2500, seed=31)
    lte = LTE(LTEConfig(budget=20, ku=30, kq=40, n_tasks=5,
                        meta=MetaHyperParams(epochs=1, local_steps=2,
                                             pretrain_epochs=1),
                        basic_steps=10))
    lte.fit_offline(table, train=False)
    return lte


def region_for(state, table):
    raw = state.subspace.project(table.data)
    lo = raw.min(axis=0)
    hi = raw.max(axis=0)
    mid = (lo + hi) / 2
    return BoxRegion(lo, mid)  # lower-left quadrant, raw coordinates


class TestSubspaceSVM:
    @pytest.mark.parametrize("encoded", [False, True])
    def test_fits_and_predicts_conjunction(self, prepared_lte, encoded):
        subspaces = list(prepared_lte.states)[:2]
        explorer = SubspaceSVMExplorer(
            {s: prepared_lte.states[s] for s in subspaces}, encoded=encoded,
            seed=0)
        regions = {s: region_for(prepared_lte.states[s], prepared_lte.table)
                   for s in subspaces}
        rng = np.random.default_rng(0)
        for subspace in subspaces:
            raw = subspace.project(prepared_lte.table.data)
            tuples = raw[rng.choice(len(raw), 40, replace=False)]
            explorer.fit_subspace(subspace, tuples,
                                  regions[subspace].label(tuples))
        rows = prepared_lte.table.sample_rows(300, seed=1)
        preds = explorer.predict(rows)
        assert preds.shape == (300,)
        joint = np.ones(300, dtype=int)
        for subspace in subspaces:
            joint &= explorer.predict_subspace(subspace,
                                               subspace.project(rows))
        assert np.array_equal(preds, joint)

    def test_unfitted_subspace_raises(self, prepared_lte):
        subspaces = list(prepared_lte.states)[:1]
        explorer = SubspaceSVMExplorer(
            {s: prepared_lte.states[s] for s in subspaces}, seed=0)
        with pytest.raises(RuntimeError):
            explorer.predict_subspace(subspaces[0], np.zeros((2, 2)))

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            SubspaceSVMExplorer({})

    def test_encoded_uses_preprocessor_width(self, prepared_lte):
        subspace = list(prepared_lte.states)[0]
        state = prepared_lte.states[subspace]
        explorer = SubspaceSVMExplorer({subspace: state}, encoded=True,
                                       seed=0)
        rng = np.random.default_rng(2)
        raw = subspace.project(prepared_lte.table.data)
        tuples = raw[rng.choice(len(raw), 30, replace=False)]
        region = region_for(state, prepared_lte.table)
        explorer.fit_subspace(subspace, tuples, region.label(tuples))
        features = explorer._featurize(subspace, tuples[:5])
        assert features.shape == (5, state.preprocessor.width)
