"""Tests for the AL-SVM and DSM full-space explorers."""

import numpy as np
import pytest

from repro.baselines import ALSVMExplorer, DSMExplorer
from repro.explore.metrics import f1_score
from repro.geometry import BoxRegion


REGION = BoxRegion([0.25, 0.25], [0.75, 0.75])


def uniform_rows(n=3000, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, size=(n, 2))


def label_fn(points):
    return REGION.label(points)


class TestALSVM:
    def test_learns_box_region(self):
        rows = uniform_rows()
        explorer = ALSVMExplorer(budget=40, pool_size=500, seed=0)
        explorer.explore(rows, label_fn)
        test = uniform_rows(seed=9)
        f1 = f1_score(REGION.label(test), explorer.predict(test))
        assert f1 > 0.6

    def test_predict_before_explore(self):
        with pytest.raises(RuntimeError):
            ALSVMExplorer().predict(np.zeros((2, 2)))

    def test_labels_used_recorded(self):
        explorer = ALSVMExplorer(budget=10, pool_size=200, seed=0)
        explorer.explore(uniform_rows(800), label_fn)
        assert explorer.labels_used_ == 10

    def test_prediction_binary(self):
        explorer = ALSVMExplorer(budget=10, pool_size=200, seed=0)
        explorer.explore(uniform_rows(800), label_fn)
        preds = explorer.predict(uniform_rows(100, seed=2))
        assert set(np.unique(preds)) <= {0, 1}


class TestDSM:
    def test_learns_box_region_better_than_chance(self):
        rows = uniform_rows()
        explorer = DSMExplorer(budget=40, pool_size=500, seed=0)
        explorer.explore(rows, label_fn)
        test = uniform_rows(seed=9)
        f1 = f1_score(REGION.label(test), explorer.predict(test))
        assert f1 > 0.6

    def test_three_set_metric_monotone_nondecreasing_overall(self):
        rows = uniform_rows()
        explorer = DSMExplorer(budget=30, pool_size=400, seed=0,
                               metric_every=5)
        explorer.explore(rows, label_fn)
        history = explorer.three_set_history_
        assert len(history) == 6  # sampled every 5 labels
        # The certified fraction generally grows as labels accumulate.
        assert history[-1] >= history[0]
        assert 0.0 <= min(history) and max(history) <= 1.0

    def test_certified_positive_points_predicted_positive(self):
        rows = uniform_rows()
        explorer = DSMExplorer(budget=30, pool_size=400, seed=1)
        explorer.explore(rows, label_fn)
        test = uniform_rows(500, seed=3)
        scaled = explorer.scaler.transform(test)
        codes = explorer.polytope.three_set_partition(scaled)
        preds = explorer.predict(test)
        assert (preds[codes == 1] == 1).all()
        assert (preds[codes == 0] == 0).all()

    def test_predict_before_explore(self):
        with pytest.raises(RuntimeError):
            DSMExplorer().predict(np.zeros((2, 2)))

    def test_dsm_beats_alsvm_on_convex_2d(self):
        """The polytope certificates should give DSM an edge on its home
        turf (convex region, low dimension) — the paper's Fig. 5(a)."""
        rows = uniform_rows()
        test = uniform_rows(seed=11)
        truth = REGION.label(test)
        scores = {}
        for name, cls in (("dsm", DSMExplorer), ("al_svm", ALSVMExplorer)):
            vals = []
            for seed in range(3):
                explorer = cls(budget=30, pool_size=400, seed=seed)
                explorer.explore(rows, label_fn)
                vals.append(f1_score(truth, explorer.predict(test)))
            scores[name] = np.mean(vals)
        assert scores["dsm"] >= scores["al_svm"] - 0.1
