"""Tests for the factorized DSM variant."""

import numpy as np
import pytest

from repro.baselines.dsm_factorized import FactorizedDSMExplorer
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_sdss
from repro.explore import ConjunctiveOracle, f1_score


@pytest.fixture(scope="module")
def setup():
    from repro.bench import subspace_region
    table = make_sdss(n_rows=3000, seed=101)
    lte = LTE(LTEConfig(budget=25, ku=30, kq=40, n_tasks=5,
                        meta=MetaHyperParams(epochs=1, local_steps=2,
                                             pretrain_epochs=1)))
    lte.fit_offline(table, train=False)
    subspaces = list(lte.states)[:2]
    rng = np.random.default_rng(3)
    regions = {s: subspace_region(lte.states[s], UISMode(1, 15),
                                  seed=int(rng.integers(2 ** 31)))
               for s in subspaces}
    return lte, subspaces, ConjunctiveOracle(regions)


def fitted_explorer(lte, subspaces, oracle, n_labels=40, seed=0):
    explorer = FactorizedDSMExplorer(
        {s: lte.states[s] for s in subspaces}, seed=seed)
    rng = np.random.default_rng(seed)
    for subspace in subspaces:
        raw = subspace.project(lte.table.data)
        tuples = raw[rng.choice(len(raw), n_labels, replace=False)]
        labels = oracle.ground_truth_subspace(subspace, tuples)
        explorer.fit_subspace(subspace, tuples, labels)
    return explorer


class TestFactorizedDSM:
    def test_learns_convex_conjunctive_region(self, setup):
        lte, subspaces, oracle = setup
        explorer = fitted_explorer(lte, subspaces, oracle)
        rows = lte.table.sample_rows(1500, seed=7)
        f1 = f1_score(oracle.ground_truth(rows), explorer.predict(rows))
        assert f1 > 0.5  # convex truth, per-subspace budget: home turf

    def test_prediction_is_conjunction(self, setup):
        lte, subspaces, oracle = setup
        explorer = fitted_explorer(lte, subspaces, oracle)
        rows = lte.table.sample_rows(300, seed=8)
        joint = explorer.predict(rows)
        manual = np.ones(len(rows), dtype=int)
        for subspace in subspaces:
            manual &= explorer.predict_subspace(subspace,
                                                subspace.project(rows))
        assert np.array_equal(joint, manual)

    def test_certified_predictions_sound_per_subspace(self, setup):
        lte, subspaces, oracle = setup
        explorer = fitted_explorer(lte, subspaces, oracle, seed=1)
        subspace = subspaces[0]
        model = explorer._models[subspace]
        raw = subspace.project(lte.table.sample_rows(800, seed=9))
        scaled = model.state.to_scaled(raw)
        codes = model.polytope.three_set_partition(scaled)
        truth = oracle.ground_truth_subspace(subspace, raw)
        certified = codes != -1
        # Convex truth => every certificate correct.
        assert np.array_equal(codes[certified], truth[certified])

    def test_three_set_metric_unit_interval(self, setup):
        lte, subspaces, oracle = setup
        explorer = fitted_explorer(lte, subspaces, oracle, seed=2)
        rows = lte.table.sample_rows(400, seed=10)
        assert 0.0 <= explorer.three_set_metric(rows) <= 1.0

    def test_unfitted_errors(self, setup):
        lte, subspaces, _ = setup
        explorer = FactorizedDSMExplorer(
            {s: lte.states[s] for s in subspaces})
        with pytest.raises(RuntimeError):
            explorer.predict(np.zeros((2, 8)))
        with pytest.raises(RuntimeError):
            explorer.predict_subspace(subspaces[0], np.zeros((2, 2)))

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            FactorizedDSMExplorer({})
