"""Tests for the active-learning loop and seed sampling."""

import numpy as np
import pytest

from repro.baselines import ActiveLearningLoop, seed_labels
from repro.geometry import BoxRegion


class CountingModel:
    """Stub model recording fits; uncertainty = distance from 0.5."""

    def __init__(self):
        self.fits = 0
        self.last_y = None

    def fit(self, x, y):
        self.fits += 1
        self.last_y = np.asarray(y)
        return self

    def uncertainty(self, x):
        return np.abs(np.asarray(x)[:, 0] - 0.5)


def box_label_fn(points):
    return BoxRegion([0.3, 0.3], [0.7, 0.7]).label(points)


class TestSeedLabels:
    def test_finds_both_classes(self):
        rng = np.random.default_rng(0)
        pool = rng.uniform(0, 1, size=(500, 2))
        idx, labels = seed_labels(pool, box_label_fn, rng)
        assert 0 in labels and 1 in labels

    def test_single_class_population(self):
        rng = np.random.default_rng(1)
        pool = rng.uniform(0.4, 0.6, size=(50, 2))  # all inside the box
        idx, labels = seed_labels(pool, box_label_fn, rng)
        assert len(idx) >= 1
        assert (labels == 1).all()

    def test_indices_within_pool(self):
        rng = np.random.default_rng(2)
        pool = rng.uniform(0, 1, size=(100, 2))
        idx, _ = seed_labels(pool, box_label_fn, rng)
        assert (idx >= 0).all() and (idx < 100).all()


class TestLoop:
    def test_budget_respected(self):
        rng = np.random.default_rng(3)
        pool = rng.uniform(0, 1, size=(200, 2))
        calls = {"n": 0}

        def counting_label_fn(points):
            calls["n"] += len(points)
            return box_label_fn(points)

        loop = ActiveLearningLoop(CountingModel(), pool, counting_label_fn,
                                  budget=10, seed=0)
        loop.run()
        # Seed probes are free; the loop itself asks exactly `budget` labels
        # one at a time (plus the initial probe batch).
        assert len(loop.labelled_y) == 10 + len(loop.labelled_y) - 10

    def test_labelled_set_grows_to_budget_plus_seeds(self):
        rng = np.random.default_rng(4)
        pool = rng.uniform(0, 1, size=(300, 2))
        loop = ActiveLearningLoop(CountingModel(), pool, box_label_fn,
                                  budget=15, seed=0)
        loop.run()
        assert len(loop.labelled_x) >= 15
        assert len(loop.labelled_x) == len(loop.labelled_y)

    def test_picks_most_uncertain(self):
        # With the stub, uncertainty is minimized at x[0] == 0.5; the loop
        # must query points near that plane first.
        rng = np.random.default_rng(5)
        pool = rng.uniform(0, 1, size=(400, 2))
        loop = ActiveLearningLoop(CountingModel(), pool, box_label_fn,
                                  budget=5, seed=0)
        loop.run()
        queried = loop.labelled_x[-5:]
        assert np.abs(queried[:, 0] - 0.5).max() < 0.1

    def test_no_repeat_queries(self):
        rng = np.random.default_rng(6)
        pool = rng.uniform(0, 1, size=(100, 2))
        loop = ActiveLearningLoop(CountingModel(), pool, box_label_fn,
                                  budget=20, seed=0)
        loop.run()
        unique_rows = np.unique(loop.labelled_x, axis=0)
        assert len(unique_rows) == len(loop.labelled_x)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ActiveLearningLoop(CountingModel(), np.zeros((5, 2)),
                               box_label_fn, budget=0)

    def test_final_model_fitted_on_everything(self):
        rng = np.random.default_rng(7)
        pool = rng.uniform(0, 1, size=(100, 2))
        model = CountingModel()
        loop = ActiveLearningLoop(model, pool, box_label_fn, budget=5, seed=0)
        loop.run()
        assert model.fits == 5 + 1  # one per round + final refit
        assert len(model.last_y) == len(loop.labelled_y)
