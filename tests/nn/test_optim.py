"""Tests for SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, Tensor
from repro.nn.tensor import Parameter


def quadratic_loss(param, target):
    diff = param - target
    return (diff * diff).sum()


class TestSGD:
    def test_descends_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 1.0])
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p, target).backward()
            opt.step()
        assert np.allclose(p.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        def losses_after(momentum, steps=20):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(steps):
                opt.zero_grad()
                quadratic_loss(p, np.zeros(1)).backward()
                opt.step()
            return abs(p.data[0])

        assert losses_after(0.9) < losses_after(0.0)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad yet: must be a no-op, not an error
        assert np.allclose(p.data, 1.0)

    def test_validation(self):
        p = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)


class TestAdam:
    def test_descends_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 1.0])
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p, target).backward()
            opt.step()
        assert np.allclose(p.data, target, atol=1e-2)

    def test_first_step_size_is_about_lr(self):
        # With bias correction, Adam's first update magnitude ~= lr.
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.05)
        opt.zero_grad()
        quadratic_loss(p, np.zeros(1)).backward()
        opt.step()
        assert np.isclose(10.0 - p.data[0], 0.05, rtol=1e-3)

    def test_handles_sparse_grad_pattern(self):
        p1 = Parameter(np.ones(1))
        p2 = Parameter(np.ones(1))
        opt = Adam([p1, p2], lr=0.1)
        opt.zero_grad()
        (p1 * 2.0).sum().backward()  # only p1 gets a gradient
        opt.step()
        assert p1.data[0] != 1.0
        assert p2.data[0] == 1.0

    def test_zero_grad_via_optimizer(self):
        p = Parameter(np.ones(1))
        opt = Adam([p], lr=0.1)
        (p * 2).sum().backward()
        opt.zero_grad()
        assert p.grad is None


def test_optimizers_train_small_net_to_fit_xor():
    """Integration: Adam fits XOR (non-linearly separable)."""
    from repro.nn import MLP
    from repro.nn.functional import binary_cross_entropy_with_logits

    rng = np.random.default_rng(0)
    x = np.array([[0.0, 0], [0, 1], [1, 0], [1, 1]])
    y = np.array([0.0, 1, 1, 0])
    net = MLP([2, 8, 1], rng=rng)
    opt = Adam(net.parameters(), lr=0.05)
    for _ in range(400):
        opt.zero_grad()
        logits = net(Tensor(x)).reshape(-1)
        binary_cross_entropy_with_logits(logits, y).backward()
        opt.step()
    pred = (net(Tensor(x)).data.ravel() > 0).astype(int)
    assert np.array_equal(pred, y.astype(int))
