"""Tests for functional ops: losses, softmax, cosine similarity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.functional import (binary_cross_entropy_with_logits,
                                 cosine_similarity, log_softmax, mse_loss,
                                 relu, sigmoid, softmax)


class TestBCE:
    def test_matches_reference_formula(self):
        logits = np.array([0.5, -1.2, 3.0])
        targets = np.array([1.0, 0.0, 1.0])
        loss = binary_cross_entropy_with_logits(Tensor(logits), targets)
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        assert np.isclose(loss.item(), expected.mean())

    def test_stable_at_extreme_logits(self):
        loss = binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_reductions(self):
        logits = Tensor([1.0, -1.0])
        targets = np.array([1.0, 0.0])
        total = binary_cross_entropy_with_logits(
            logits, targets, reduction="sum").item()
        mean = binary_cross_entropy_with_logits(
            logits, targets, reduction="mean").item()
        none = binary_cross_entropy_with_logits(
            logits, targets, reduction="none")
        assert np.isclose(total, mean * 2)
        assert none.shape == (2,)
        with pytest.raises(ValueError):
            binary_cross_entropy_with_logits(logits, targets,
                                             reduction="bogus")

    def test_accepts_tensor_targets(self):
        loss = binary_cross_entropy_with_logits(
            Tensor([0.0]), Tensor([1.0]))
        assert np.isclose(loss.item(), np.log(2))


class TestSoftmax:
    def test_sums_to_one(self):
        out = softmax(Tensor(np.random.default_rng(0).normal(size=(3, 5))))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(softmax(Tensor(x)).data,
                           softmax(Tensor(x + 100)).data)

    def test_stable_for_large_inputs(self):
        out = softmax(Tensor([1e4, 0.0]))
        assert np.isfinite(out.data).all()

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(1).normal(size=6)
        assert np.allclose(log_softmax(Tensor(x)).data,
                           np.log(softmax(Tensor(x)).data))


class TestCosine:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=4)
        m = rng.normal(size=(3, 4))
        out = cosine_similarity(Tensor(v), Tensor(m)).data
        expected = m @ v / (np.linalg.norm(v) * np.linalg.norm(m, axis=1))
        assert np.allclose(out, expected, atol=1e-9)

    def test_self_similarity_is_one(self):
        v = np.array([1.0, 2.0, 3.0])
        out = cosine_similarity(Tensor(v), Tensor(v[None, :]))
        assert np.isclose(out.data[0], 1.0)

    def test_zero_vector_does_not_nan(self):
        out = cosine_similarity(Tensor(np.zeros(3)), Tensor(np.ones((2, 3))))
        assert np.isfinite(out.data).all()


class TestSimpleWrappers:
    def test_sigmoid_and_relu_accept_arrays(self):
        assert np.isclose(sigmoid(np.array([0.0])).data[0], 0.5)
        assert np.allclose(relu(np.array([-1.0, 2.0])).data, [0.0, 2.0])

    def test_mse(self):
        loss = mse_loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.5)
        with pytest.raises(ValueError):
            mse_loss(Tensor([1.0]), np.array([0.0]), reduction="bad")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-50, 50), min_size=1, max_size=8),
       st.lists(st.integers(0, 1), min_size=1, max_size=8))
def test_property_bce_nonnegative(logits, bits):
    n = min(len(logits), len(bits))
    loss = binary_cross_entropy_with_logits(
        Tensor(np.asarray(logits[:n])), np.asarray(bits[:n], dtype=float))
    assert loss.item() >= -1e-12


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-10, 10), min_size=2, max_size=8))
def test_property_softmax_is_distribution(values):
    out = softmax(Tensor(np.asarray(values))).data
    assert np.all(out >= 0)
    assert np.isclose(out.sum(), 1.0)
