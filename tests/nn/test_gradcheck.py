"""Gradient checks: autograd vs central finite differences.

These are the load-bearing correctness tests of the NN substrate — every
differentiable op and the full composite meta-learner forward pass are
verified against numerical differentiation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.functional import (binary_cross_entropy_with_logits,
                                 cosine_similarity, mse_loss, softmax)

EPS = 1e-6
ATOL = 1e-5


def numeric_grad(fn, x):
    """Central finite-difference gradient of scalar fn at numpy x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        hi = fn(x)
        flat[i] = orig - EPS
        lo = fn(x)
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * EPS)
    return grad


def check(op, x, atol=ATOL):
    """Assert autograd gradient of ``sum(op(t))`` matches numeric."""
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    expected = numeric_grad(lambda v: op(Tensor(v)).sum().item(), x)
    assert np.allclose(t.grad, expected, atol=atol), \
        "max err {}".format(np.abs(t.grad - expected).max())


RNG = np.random.default_rng(42)


@pytest.mark.parametrize("op", [
    lambda t: t + 2.0,
    lambda t: 3.0 - t,
    lambda t: t * t,
    lambda t: t / 2.5,
    lambda t: 1.0 / (t + 3.0),
    lambda t: -t,
    lambda t: t ** 3,
    lambda t: t.relu(),
    lambda t: t.sigmoid(),
    lambda t: t.tanh(),
    lambda t: t.exp(),
    lambda t: (t + 3.0).log(),
    lambda t: (t + 3.0).sqrt(),
    lambda t: (t * t + 0.1).abs(),
    lambda t: t.mean(),
    lambda t: t.mean(axis=0),
    lambda t: t.sum(axis=1, keepdims=True),
    lambda t: t.reshape(-1),
    lambda t: t.T,
    lambda t: t[1:],
], ids=lambda op: "op")
def test_elementwise_and_shape_ops(op):
    check(op, RNG.normal(size=(3, 4)) * 0.7)


def test_matmul_grad_both_sides():
    a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
    (a @ b).sum().backward()
    na = numeric_grad(lambda v: (Tensor(v) @ b.detach()).sum().item(), a.data)
    nb = numeric_grad(lambda v: (a.detach() @ Tensor(v)).sum().item(), b.data)
    assert np.allclose(a.grad, na, atol=ATOL)
    assert np.allclose(b.grad, nb, atol=ATOL)


def test_matmul_vector_matrix_grad():
    v = Tensor(RNG.normal(size=4), requires_grad=True)
    m = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
    (v @ m).sum().backward()
    nv = numeric_grad(lambda x: (Tensor(x) @ m.detach()).sum().item(), v.data)
    nm = numeric_grad(lambda x: (v.detach() @ Tensor(x)).sum().item(), m.data)
    assert np.allclose(v.grad, nv, atol=ATOL)
    assert np.allclose(m.grad, nm, atol=ATOL)


def test_matmul_dot_grad():
    a = Tensor(RNG.normal(size=5), requires_grad=True)
    b = Tensor(RNG.normal(size=5), requires_grad=True)
    (a @ b).backward()
    assert np.allclose(a.grad, b.data)
    assert np.allclose(b.grad, a.data)


def test_concat_grad():
    a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
    (Tensor.concat([a, b], axis=1) ** 2).sum().backward()
    assert np.allclose(a.grad, 2 * a.data, atol=ATOL)
    assert np.allclose(b.grad, 2 * b.data, atol=ATOL)


def test_stack_grad():
    a = Tensor(RNG.normal(size=3), requires_grad=True)
    b = Tensor(RNG.normal(size=3), requires_grad=True)
    (Tensor.stack([a, b]) * np.array([[1.0], [2.0]])).sum().backward()
    assert np.allclose(a.grad, 1.0)
    assert np.allclose(b.grad, 2.0)


def test_broadcast_add_grad():
    a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=4), requires_grad=True)
    ((a + b) ** 2).sum().backward()
    nb = numeric_grad(
        lambda v: ((a.detach() + Tensor(v)) ** 2).sum().item(), b.data)
    assert np.allclose(b.grad, nb, atol=ATOL)


def test_bce_with_logits_grad_matches_numeric():
    logits = RNG.normal(size=8) * 3
    targets = RNG.integers(0, 2, size=8).astype(float)
    t = Tensor(logits.copy(), requires_grad=True)
    binary_cross_entropy_with_logits(t, targets).backward()
    expected = numeric_grad(
        lambda v: binary_cross_entropy_with_logits(
            Tensor(v), targets).item(), logits)
    assert np.allclose(t.grad, expected, atol=ATOL)


def test_bce_grad_equals_sigmoid_minus_target():
    logits = RNG.normal(size=6)
    targets = RNG.integers(0, 2, size=6).astype(float)
    t = Tensor(logits.copy(), requires_grad=True)
    binary_cross_entropy_with_logits(t, targets, reduction="sum").backward()
    sig = 1 / (1 + np.exp(-logits))
    assert np.allclose(t.grad, sig - targets, atol=ATOL)


def test_mse_grad():
    pred = RNG.normal(size=5)
    target = RNG.normal(size=5)
    t = Tensor(pred.copy(), requires_grad=True)
    mse_loss(t, target).backward()
    assert np.allclose(t.grad, 2 * (pred - target) / 5, atol=ATOL)


def test_softmax_grad():
    x = RNG.normal(size=5)
    t = Tensor(x.copy(), requires_grad=True)
    (softmax(t) * np.arange(5.0)).sum().backward()
    expected = numeric_grad(
        lambda v: (softmax(Tensor(v)) * np.arange(5.0)).sum().item(), x)
    assert np.allclose(t.grad, expected, atol=ATOL)


def test_cosine_similarity_grad_both_inputs():
    v = RNG.normal(size=4)
    m = RNG.normal(size=(3, 4))
    tv = Tensor(v.copy(), requires_grad=True)
    tm = Tensor(m.copy(), requires_grad=True)
    cosine_similarity(tv, tm).sum().backward()
    nv = numeric_grad(
        lambda x: cosine_similarity(Tensor(x), Tensor(m)).sum().item(), v)
    nm = numeric_grad(
        lambda x: cosine_similarity(Tensor(v), Tensor(x)).sum().item(), m)
    assert np.allclose(tv.grad, nv, atol=ATOL)
    assert np.allclose(tm.grad, nm, atol=ATOL)


# ----------------------------------------------------------------------
# Batched ops (the serving hot path): stacked matmul, swapaxes, batched
# linear layers and the per-task-reduced BCE.
# ----------------------------------------------------------------------
def test_batched_matmul_grad_both_sides():
    a = Tensor(RNG.normal(size=(3, 4, 5)), requires_grad=True)
    b = Tensor(RNG.normal(size=(3, 5, 2)), requires_grad=True)
    (a @ b).sum().backward()
    na = numeric_grad(lambda v: (Tensor(v) @ b.detach()).sum().item(), a.data)
    nb = numeric_grad(lambda v: (a.detach() @ Tensor(v)).sum().item(), b.data)
    assert np.allclose(a.grad, na, atol=ATOL)
    assert np.allclose(b.grad, nb, atol=ATOL)


def test_batched_matmul_broadcast_grad():
    """(n, 1) @ (K, 1, m) — the tiler broadcast of the batched forward."""
    tiler = Tensor(np.ones((4, 1)), requires_grad=True)
    emb = Tensor(RNG.normal(size=(3, 1, 5)), requires_grad=True)
    (tiler @ emb).sum().backward()
    nt = numeric_grad(lambda v: (Tensor(v) @ emb.detach()).sum().item(),
                      tiler.data)
    ne = numeric_grad(lambda v: (tiler.detach() @ Tensor(v)).sum().item(),
                      emb.data)
    assert np.allclose(tiler.grad, nt, atol=ATOL)
    assert np.allclose(emb.grad, ne, atol=ATOL)


def test_batched_matmul_single_element_batch_grad():
    """K = 1: the degenerate stacked batch must still check out."""
    a = Tensor(RNG.normal(size=(1, 3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=(1, 4, 2)), requires_grad=True)
    (a @ b).sum().backward()
    na = numeric_grad(lambda v: (Tensor(v) @ b.detach()).sum().item(), a.data)
    nb = numeric_grad(lambda v: (a.detach() @ Tensor(v)).sum().item(), b.data)
    assert np.allclose(a.grad, na, atol=ATOL)
    assert np.allclose(b.grad, nb, atol=ATOL)


def test_batched_matmul_non_contiguous_grad():
    """Non-contiguous (transposed-view) operands of a stacked matmul."""
    base = RNG.normal(size=(4, 3, 5))
    a = Tensor(np.swapaxes(base, 0, 1), requires_grad=True)  # view
    assert not a.data.flags["C_CONTIGUOUS"]
    b = Tensor(RNG.normal(size=(3, 5, 2)), requires_grad=True)
    (a @ b).sum().backward()
    na = numeric_grad(
        lambda v: (Tensor(v) @ b.detach()).sum().item(),
        np.ascontiguousarray(a.data))
    assert np.allclose(a.grad, na, atol=ATOL)


def test_swapaxes_grad():
    check(lambda t: t.swapaxes(-1, -2), RNG.normal(size=(2, 3, 4)))
    weights = RNG.normal(size=(4, 3, 2))
    check(lambda t: t.swapaxes(0, 2) * weights, RNG.normal(size=(2, 3, 4)))


def test_batched_linear_matches_stacked_linears():
    from repro.nn import BatchedLinear, Linear

    rng = np.random.default_rng(3)
    linears = [Linear(4, 3, rng=np.random.default_rng(10 + i))
               for i in range(3)]
    batched = BatchedLinear.from_linears(linears)
    x = rng.normal(size=(3, 5, 4))
    out = batched(Tensor(x))
    for i, lin in enumerate(linears):
        assert np.allclose(out.data[i], lin(Tensor(x[i])).data, atol=1e-12)


def test_batched_linear_gradcheck():
    from repro.nn import BatchedLinear

    batched = BatchedLinear(2, 3, 2, rng=np.random.default_rng(0))
    x = RNG.normal(size=(2, 4, 3))

    def loss_at(flat):
        offset = 0
        for p in batched.parameters():
            p.copy_(flat[offset:offset + p.size].reshape(p.data.shape))
            offset += p.size
        return (batched(Tensor(x)) ** 2).sum().item()

    flat0 = batched.flat_parameters().copy()
    batched.zero_grad()
    (batched(Tensor(x)) ** 2).sum().backward()
    auto = np.concatenate([p.grad.ravel() for p in batched.parameters()])
    numeric = numeric_grad(loss_at, flat0)
    batched.load_flat_parameters(flat0)
    assert np.allclose(auto, numeric, atol=1e-4)


def test_batched_bce_grad_matches_numeric():
    from repro.nn.functional import batched_binary_cross_entropy_with_logits

    logits = RNG.normal(size=(3, 6)) * 2
    targets = RNG.integers(0, 2, size=(3, 6)).astype(float)
    pos_weight = np.array([[1.0], [2.5], [4.0]])
    t = Tensor(logits.copy(), requires_grad=True)
    batched_binary_cross_entropy_with_logits(
        t, targets, pos_weight=pos_weight).sum().backward()
    expected = numeric_grad(
        lambda v: batched_binary_cross_entropy_with_logits(
            Tensor(v), targets, pos_weight=pos_weight).sum().item(), logits)
    assert np.allclose(t.grad, expected, atol=ATOL)


def test_batched_bce_matches_per_task_sequential():
    """Summed batched loss gradient == per-task sequential loss gradients."""
    from repro.nn.functional import (balanced_pos_weight,
                                     batched_binary_cross_entropy_with_logits,
                                     batched_pos_weight)

    logits = RNG.normal(size=(4, 7))
    targets = RNG.integers(0, 2, size=(4, 7)).astype(float)
    pos_weight = batched_pos_weight(targets)
    t = Tensor(logits.copy(), requires_grad=True)
    batched_binary_cross_entropy_with_logits(
        t, targets, pos_weight=pos_weight).sum().backward()
    for k in range(4):
        row = Tensor(logits[k].copy(), requires_grad=True)
        binary_cross_entropy_with_logits(
            row, targets[k],
            pos_weight=balanced_pos_weight(targets[k])).backward()
        assert np.allclose(t.grad[k], row.grad, atol=1e-12)
        assert np.isclose(pos_weight[k, 0], balanced_pos_weight(targets[k]))


def test_batched_bce_single_task_edge_case():
    from repro.nn.functional import batched_binary_cross_entropy_with_logits

    logits = RNG.normal(size=(1, 5))
    targets = np.ones((1, 5))   # single class -> pos_weight path disabled
    t = Tensor(logits.copy(), requires_grad=True)
    loss = batched_binary_cross_entropy_with_logits(t, targets)
    assert loss.shape == (1,)
    loss.sum().backward()
    expected = numeric_grad(
        lambda v: batched_binary_cross_entropy_with_logits(
            Tensor(v), targets).sum().item(), logits)
    assert np.allclose(t.grad, expected, atol=ATOL)


def test_full_classifier_forward_gradcheck():
    """End-to-end gradient check through the UISClassifier composite."""
    from repro.core.meta_learner import UISClassifier

    rng = np.random.default_rng(7)  # test-local: immune to execution order
    model = UISClassifier(ku=6, input_width=5, embed_size=4, hidden_size=3,
                          seed=0)
    v_r = rng.integers(0, 2, size=6).astype(float)
    x = rng.normal(size=(7, 5))
    y = rng.integers(0, 2, size=7).astype(float)

    def loss_at(flat):
        model.load_flat_parameters(flat)
        logits = model.forward(v_r, x)
        return binary_cross_entropy_with_logits(logits, y).item()

    flat0 = model.flat_parameters().copy()
    model.zero_grad()
    loss = binary_cross_entropy_with_logits(model.forward(v_r, x), y)
    loss.backward()
    auto = np.concatenate([
        (p.grad if p.grad is not None else np.zeros_like(p.data)).ravel()
        for p in model.parameters()])
    numeric = numeric_grad(lambda v: loss_at(v), flat0)
    model.load_flat_parameters(flat0)
    assert np.allclose(auto, numeric, atol=1e-4), \
        "max err {}".format(np.abs(auto - numeric).max())


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-3, 3), min_size=2, max_size=6))
def test_property_sigmoid_grad_bounded(values):
    """d sigmoid/dx is in (0, 0.25] everywhere — autograd must agree."""
    t = Tensor(np.asarray(values), requires_grad=True)
    t.sigmoid().sum().backward()
    assert np.all(t.grad > 0)
    assert np.all(t.grad <= 0.25 + 1e-12)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_property_matmul_grad_shapes(n, k, m):
    a = Tensor(np.ones((n, k)), requires_grad=True)
    b = Tensor(np.ones((k, m)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == (n, k)
    assert b.grad.shape == (k, m)
    assert np.allclose(a.grad, m)
    assert np.allclose(b.grad, n)
