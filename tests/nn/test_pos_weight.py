"""Tests for class-balanced BCE (pos_weight / balanced_pos_weight)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.functional import (balanced_pos_weight,
                                 binary_cross_entropy_with_logits)


class TestPosWeight:
    def test_weight_one_is_identity(self):
        logits = Tensor([0.5, -1.0])
        targets = np.array([1.0, 0.0])
        plain = binary_cross_entropy_with_logits(logits, targets).item()
        weighted = binary_cross_entropy_with_logits(
            logits, targets, pos_weight=1.0).item()
        assert np.isclose(plain, weighted)

    def test_weight_scales_positive_terms_only(self):
        logits = Tensor([0.3, 0.3])
        targets = np.array([1.0, 0.0])
        none = binary_cross_entropy_with_logits(
            logits, targets, reduction="none", pos_weight=3.0).data
        base = binary_cross_entropy_with_logits(
            logits, targets, reduction="none").data
        assert np.isclose(none[0], 3.0 * base[0])
        assert np.isclose(none[1], base[1])

    def test_gradient_includes_weight(self):
        # Avoid z = 0: that point is the (measure-zero) kink of the stable
        # BCE decomposition where subgradients differ.
        logits = Tensor(np.array([0.2]), requires_grad=True)
        binary_cross_entropy_with_logits(
            logits, np.array([1.0]), pos_weight=4.0).backward()
        expected = 4.0 * (1.0 / (1.0 + np.exp(-0.2)) - 1.0)
        assert np.isclose(logits.grad[0], expected)


class TestBalancedPosWeight:
    def test_ratio(self):
        assert balanced_pos_weight(np.array([1, 0, 0, 0])) == 3.0

    def test_cap(self):
        targets = np.array([1] + [0] * 50)
        assert balanced_pos_weight(targets, cap=10.0) == 10.0

    def test_degenerate_single_class(self):
        assert balanced_pos_weight(np.ones(5)) == 1.0
        assert balanced_pos_weight(np.zeros(5)) == 1.0

    def test_accepts_tensor(self):
        assert balanced_pos_weight(Tensor([1.0, 0.0])) == 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
def test_property_balanced_weight_bounds(bits):
    bits = np.asarray(bits)
    weight = balanced_pos_weight(bits)
    # Positive, finite, capped; exactly n_neg/n_pos when both classes
    # present and under the cap.
    assert 0 < weight <= 10.0
    n_pos, n_neg = (bits == 1).sum(), (bits == 0).sum()
    if n_pos and n_neg and n_neg / n_pos <= 10.0:
        assert np.isclose(weight, n_neg / n_pos)
