"""Fused-vs-reference parity and plan-cache behavior of repro.nn.compile.

The fused backend replays a compiled instruction list over preallocated
buffers; its contract is **bit identity** with the eager reference
engine.  This suite asserts that contract directly over the axes that
change the compiled program (optimizer, class balancing, conversion
handling, step count), then pins the caching machinery the speedup
rests on: shape-bucket keying, bounded eviction, unsupported-program
fallback, thread safety, and steady-state allocation behavior.
"""

import threading
import tracemalloc

import numpy as np
import pytest

import repro.nn.compile as compile_mod
from repro.core.meta_learner import UISClassifier
from repro.nn import (Parameter, Tensor, fused_local_adapt, grad_stacks,
                      stacked_predict)
from repro.nn.batching import BatchedUISClassifier
from repro.nn.compile import (FusedBackend, PlanCache, ReferenceBackend,
                              available_backends, backend_scope, get_backend,
                              moment_pool, set_backend)
from repro.nn.functional import batched_pos_weight
from repro.nn.layers import Module

pytestmark = pytest.mark.compile

KU, WIDTH, EMBED, HIDDEN = 6, 5, 4, 3


def make_models(k, use_conversion=False, seed=0):
    return [UISClassifier(ku=KU, input_width=WIDTH, embed_size=EMBED,
                          hidden_size=HIDDEN, use_conversion=use_conversion,
                          seed=seed * 97 + i) for i in range(k)]


def make_task_data(k, n, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(k, KU))
    xs = rng.normal(size=(k, n, WIDTH))
    ys = (rng.random(size=(k, n)) < 0.4).astype(np.float64)
    ys[:, 0] = 1.0  # both classes present in every task
    ys[:, 1] = 0.0
    return features, xs, ys


def make_conversions(k, seed=0):
    rng = np.random.default_rng(seed + 1000)
    return [rng.normal(size=(EMBED, 3 * EMBED)) * 0.3 for _ in range(k)]


def adapt_under(backend, *, k=4, n=6, steps=2, optimizer="adam",
                balance=True, use_conversion=False, seed=0, lr=0.05):
    """Run the full fused_local_adapt + stacked_predict consumer pair
    under ``backend`` and capture every observable output (copied, since
    fused gradients alias plan workspace until the next replay)."""
    models = make_models(k, use_conversion=use_conversion, seed=seed)
    features, xs, ys = make_task_data(k, n, seed=seed)
    conversions = make_conversions(k, seed=seed) if use_conversion else None
    with backend_scope(backend):
        batched, conversion = fused_local_adapt(
            models, features, xs, ys, conversions=conversions, steps=steps,
            lr=lr, optimizer_kind=optimizer, balance_classes=balance)
        grads = {name: (None if g is None else np.array(g))
                 for name, g in grad_stacks(batched).items()}
        conv_grad = (np.array(conversion.grad)
                     if conversion is not None and conversion.grad is not None
                     else None)
        preds = stacked_predict(batched, features, xs, conversion=conversion)
    state = batched.state_dict()
    conv = None if conversion is None else np.array(conversion.data)
    return {"state": state, "grads": grads, "conv": conv,
            "conv_grad": conv_grad, "preds": preds}


def assert_bit_identical(ref, fused):
    assert set(ref["state"]) == set(fused["state"])
    for name in ref["state"]:
        assert np.array_equal(ref["state"][name], fused["state"][name]), name
    assert set(ref["grads"]) == set(fused["grads"])
    for name in ref["grads"]:
        a, b = ref["grads"][name], fused["grads"][name]
        assert (a is None) == (b is None), name
        if a is not None:
            assert np.array_equal(a, b), name
    for key in ("conv", "conv_grad"):
        a, b = ref[key], fused[key]
        assert (a is None) == (b is None), key
        if a is not None:
            assert np.array_equal(a, b), key
    assert np.array_equal(ref["preds"], fused["preds"])


# -- parity matrix: adapt + predict ------------------------------------

ADAPT_CASES = [
    # (optimizer, balance, use_conversion, steps, k, n)
    ("adam", True, False, 1, 4, 6),
    ("adam", True, False, 3, 4, 6),
    ("adam", False, False, 2, 3, 5),
    ("adam", True, True, 2, 4, 6),
    ("adam", False, True, 3, 2, 7),
    ("sgd", True, False, 2, 4, 6),
    ("sgd", False, True, 2, 3, 5),
    ("adam", True, False, 2, 1, 4),   # single-task stack
]


@pytest.mark.parametrize("optimizer,balance,use_conversion,steps,k,n",
                         ADAPT_CASES)
def test_adapt_and_predict_parity(optimizer, balance, use_conversion,
                                  steps, k, n):
    kwargs = dict(optimizer=optimizer, balance=balance,
                  use_conversion=use_conversion, steps=steps, k=k, n=n,
                  seed=steps + k)
    ref = adapt_under(ReferenceBackend(), **kwargs)
    backend = FusedBackend()
    fused = adapt_under(backend, **kwargs)
    assert backend.fallbacks == 0
    assert backend.replays == 2  # one adapt + one predict replay
    assert_bit_identical(ref, fused)


def test_repeated_replay_stays_bit_identical():
    """Replays 2..N reuse the plan's buffers; results must not drift."""
    backend = FusedBackend()
    runs = [adapt_under(backend, seed=7) for _ in range(3)]
    ref = adapt_under(ReferenceBackend(), seed=7)
    for run in runs:
        assert_bit_identical(ref, run)
    assert backend.plans.stats()["misses"] == 2  # adapt + predict plans


# -- parity: loss_backward (meta global phase / pooled pretraining) ----

def loss_backward_under(backend, conversion_mode, balance, *, k=4, n=6,
                        seed=0):
    models = make_models(k, use_conversion=(conversion_mode != "none"),
                         seed=seed)
    batched = BatchedUISClassifier(models)
    features, xs, ys = make_task_data(k, n, seed=seed)
    if conversion_mode == "none":
        conversion = None
    elif conversion_mode == "array":
        conversion = np.stack(make_conversions(k, seed=seed))
    else:
        conversion = Parameter(np.stack(make_conversions(k, seed=seed)))
    pos_weight = batched_pos_weight(ys) if balance else None
    losses = backend.loss_backward(batched, conversion, features, xs, ys,
                                   pos_weight)
    grads = {name: (None if p.grad is None else np.array(p.grad))
             for name, p in batched.named_parameters()}
    conv_grad = None
    if isinstance(conversion, Parameter) and conversion.grad is not None:
        conv_grad = np.array(conversion.grad)
    return np.array(losses), grads, conv_grad


@pytest.mark.parametrize("conversion_mode", ["none", "array", "parameter"])
@pytest.mark.parametrize("balance", [True, False])
def test_loss_backward_parity(conversion_mode, balance):
    ref = loss_backward_under(ReferenceBackend(), conversion_mode, balance,
                              seed=3)
    backend = FusedBackend()
    fused = loss_backward_under(backend, conversion_mode, balance, seed=3)
    assert backend.fallbacks == 0
    assert np.array_equal(ref[0], fused[0])
    for name in ref[1]:
        a, b = ref[1][name], fused[1][name]
        assert (a is None) == (b is None), name
        if a is not None:
            assert np.array_equal(a, b), name
    assert (ref[2] is None) == (fused[2] is None)
    if ref[2] is not None:
        assert np.array_equal(ref[2], fused[2])


# -- satellite: plan-cache keying, eviction, fallback ------------------

class TestPlanCache:
    def test_same_shapes_hit_one_plan(self):
        backend = FusedBackend()
        for seed in range(3):
            adapt_under(backend, seed=seed)
        stats = backend.plans.stats()
        # One adapt plan + one predict plan serve all three rounds.
        assert stats["entries"] == 2
        assert stats["misses"] == 2
        assert stats["hits"] == 4
        assert stats["unsupported"] == 0
        assert backend.replays == 6

    def test_new_shapes_miss(self):
        backend = FusedBackend()
        adapt_under(backend, n=6)
        adapt_under(backend, n=7)          # new batch shape
        adapt_under(backend, n=6, k=5)     # new stack height
        adapt_under(backend, n=6, optimizer="sgd")  # new optimizer kind
        stats = backend.plans.stats()
        # sgd adapt is a distinct plan; its predict plan is shared with
        # the first (same shapes), hence 7 = 4 adapt + 3 predict.
        assert stats["misses"] == 7
        assert stats["entries"] == 7

    def test_lr_and_steps_are_replay_time(self):
        """One plan serves every (lr, steps) combination of its bucket."""
        backend = FusedBackend()
        ref = adapt_under(ReferenceBackend(), steps=3, lr=0.11, seed=5)
        adapt_under(backend, steps=1, lr=0.05, seed=5)
        fused = adapt_under(backend, steps=3, lr=0.11, seed=5)
        assert backend.plans.stats()["misses"] == 2
        assert_bit_identical(ref, fused)

    def test_bounded_eviction(self):
        backend = FusedBackend(capacity=3)
        batched = BatchedUISClassifier(make_models(2))
        for n in range(4, 12):
            _f, xs, _y = make_task_data(2, n)
            features, _, _ = make_task_data(2, 4)
            backend.predict_proba(batched, features, xs)
        stats = backend.plans.stats()
        assert len(backend.plans) <= 3
        assert stats["evictions"] == 8 - 3
        # An evicted bucket recompiles on return, bit-identically.
        _f, xs, _y = make_task_data(2, 4)
        a = backend.predict_proba(batched, features, xs)
        b = ReferenceBackend().predict_proba(batched, features, xs)
        assert np.array_equal(a, b)

    def test_cache_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(0)

    def test_unsupported_program_falls_back_bit_exact(self):
        class ClipModel(Module):
            """Minimal duck-typed stacked model whose loss graph runs
            through clip — an op the compiler refuses to differentiate."""

            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.weight = Parameter(rng.normal(size=(WIDTH, 1)))

            def forward(self, features, xs, conversion=None):
                logits = Tensor._wrap(xs) @ self.weight
                k, n = logits.shape[0], logits.shape[1]
                return logits.reshape(k, n).clip(-4.0, 4.0)

        features, xs, ys = make_task_data(3, 5, seed=9)
        backend = FusedBackend()
        fused = backend.loss_backward(ClipModel(), None, features, xs, ys,
                                      None)
        assert backend.fallbacks == 1
        assert backend.plans.stats()["unsupported"] == 1
        ref = ReferenceBackend().loss_backward(ClipModel(), None, features,
                                               xs, ys, None)
        assert np.array_equal(fused, ref)
        # The failed trace is cached: the second call falls back without
        # re-attempting compilation.
        backend.loss_backward(ClipModel(), None, features, xs, ys, None)
        stats = backend.plans.stats()
        assert backend.fallbacks == 2
        assert stats["unsupported"] == 1
        assert stats["hits"] == 1


# -- satellite: thread safety ------------------------------------------

class TestThreadSafety:
    def test_get_backend_resolves_once_under_races(self, monkeypatch):
        previous = compile_mod._CURRENT[0]
        try:
            compile_mod._CURRENT[0] = None
            monkeypatch.setenv("REPRO_NN_BACKEND", "fused")
            barrier = threading.Barrier(8)
            seen = []

            def worker():
                barrier.wait()
                seen.append(get_backend())

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(seen) == 8
            assert len({id(backend) for backend in seen}) == 1
            assert seen[0].name == "fused"
        finally:
            compile_mod._CURRENT[0] = previous

    def test_concurrent_same_bucket_adapts_stay_bit_exact(self):
        """Shard workers adapt the same shape bucket concurrently; the
        shared plan must serialize replays without cross-talk."""
        seeds = list(range(6))
        ref = {seed: adapt_under(ReferenceBackend(), seed=seed)
               for seed in seeds}
        backend = FusedBackend()
        previous = get_backend()
        set_backend(backend)
        results, errors = {}, []
        try:
            def worker(seed):
                try:
                    results[seed] = adapt_under(backend, seed=seed)
                except Exception as exc:  # pragma: no cover - debug aid
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(seed,))
                       for seed in seeds]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            set_backend(previous)
        assert not errors
        assert backend.plans.stats()["entries"] == 2
        for seed in seeds:
            assert_bit_identical(ref[seed], results[seed])


# -- satellite: allocation regression ----------------------------------

class TestAllocations:
    def test_reference_backend_reuses_pooled_moments(self):
        pool = moment_pool()
        before = pool.stats()
        backend = ReferenceBackend()
        batched = BatchedUISClassifier(make_models(3, seed=21))
        features, xs, ys = make_task_data(3, 5, seed=21)
        for _ in range(3):
            backend.local_adapt(batched, None, features, xs, ys, None,
                                steps=1, lr=0.05, optimizer_kind="adam")
        after = pool.stats()
        assert after["misses"] - before["misses"] <= 1
        assert after["hits"] - before["hits"] >= 2

    def test_fused_adapt_steady_state_allocation_budget(self):
        """Steady-state fused replay must allocate no more than the
        parameter write-back copies plus the per-call loss-weight array —
        the plan's workspaces are all preallocated."""
        backend = FusedBackend()
        batched = BatchedUISClassifier(make_models(4, seed=31))
        features, xs, ys = make_task_data(4, 6, seed=31)
        pos_weight = batched_pos_weight(ys)

        def run():
            backend.local_adapt(batched, None, features, xs, ys, pos_weight,
                                steps=2, lr=0.05, optimizer_kind="adam")

        run()  # trace + compile
        run()  # first replay
        assert backend.fallbacks == 0
        assert backend.replays == 2
        param_bytes = int(sum(p.data.nbytes for p in batched.parameters()))
        # write-back copies + np.where weights + interpreter slack
        budget = param_bytes + ys.nbytes + 8192
        tracemalloc.start()
        try:
            run()  # warm the replay path under the tracer
            tracemalloc.reset_peak()
            base = tracemalloc.get_traced_memory()[0]
            run()
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak - base <= budget, (peak - base, budget)


# -- backend registry API ----------------------------------------------

class TestRegistry:
    def test_available_backends(self):
        assert available_backends() == ("fused", "reference")

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown nn backend"):
            set_backend("turbo")

    def test_backend_scope_restores(self):
        outer = get_backend()
        with backend_scope("fused") as installed:
            assert isinstance(installed, FusedBackend)
            assert get_backend() is installed
        assert get_backend() is outer

    def test_set_backend_accepts_instance(self):
        previous = get_backend()
        instance = FusedBackend(capacity=7)
        try:
            assert set_backend(instance) is instance
            assert get_backend() is instance
            assert instance.plans.capacity == 7
        finally:
            set_backend(previous)
