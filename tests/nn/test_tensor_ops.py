"""Unit tests for the autograd Tensor: forward semantics and graph basics."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn.tensor import Parameter, _unbroadcast


class TestArithmetic:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.allclose(out.data, [4.0, 6.0])

    def test_add_scalar_right_and_left(self):
        t = Tensor([1.0, 2.0])
        assert np.allclose((t + 1).data, [2.0, 3.0])
        assert np.allclose((1 + t).data, [2.0, 3.0])

    def test_sub_and_rsub(self):
        t = Tensor([5.0])
        assert np.allclose((t - 2).data, [3.0])
        assert np.allclose((2 - t).data, [-3.0])

    def test_mul_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor([1.0, 2.0, 3.0])
        assert np.allclose((a * b).data, [[1, 2, 3], [1, 2, 3]])

    def test_div_and_rdiv(self):
        t = Tensor([2.0, 4.0])
        assert np.allclose((t / 2).data, [1.0, 2.0])
        assert np.allclose((8 / t).data, [4.0, 2.0])

    def test_neg(self):
        assert np.allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow_scalar_only(self):
        t = Tensor([2.0, 3.0])
        assert np.allclose((t ** 2).data, [4.0, 9.0])
        with pytest.raises(TypeError):
            t ** np.array([1.0, 2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_matmul_vector_cases(self):
        v = Tensor([1.0, 2.0, 3.0])
        m = Tensor(np.eye(3))
        assert np.allclose((v @ m).data, v.data)
        assert np.allclose((m @ v).data, v.data)
        assert np.isclose((v @ v).item(), 14.0)


class TestNonlinearities:
    def test_relu(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_range_and_stability(self):
        out = Tensor([-1000.0, 0.0, 1000.0]).sigmoid()
        assert np.all(out.data >= 0) and np.all(out.data <= 1)
        assert np.isclose(out.data[1], 0.5)
        assert np.isfinite(out.data).all()

    def test_tanh_exp_log_sqrt_abs(self):
        t = Tensor([1.0, 4.0])
        assert np.allclose(t.tanh().data, np.tanh(t.data))
        assert np.allclose(t.exp().data, np.exp(t.data))
        assert np.allclose(t.log().data, np.log(t.data))
        assert np.allclose(t.sqrt().data, [1.0, 2.0])
        assert np.allclose(Tensor([-3.0, 2.0]).abs().data, [3.0, 2.0])

    def test_clip(self):
        out = Tensor([-5.0, 0.5, 5.0]).clip(0.0, 1.0)
        assert np.allclose(out.data, [0.0, 0.5, 1.0])


class TestReductionsAndShapes:
    def test_sum_axis(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert np.isclose(t.sum().item(), 15.0)
        assert np.allclose(t.sum(axis=0).data, [3.0, 5.0, 7.0])
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert np.isclose(t.mean().item(), 2.5)
        assert np.allclose(t.mean(axis=0).data, [1.5, 2.5, 3.5])

    def test_reshape_flatten_T(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert t.reshape(3, 2).shape == (3, 2)
        assert t.reshape((6,)).shape == (6,)
        assert t.flatten().shape == (6,)
        assert t.T.shape == (3, 2)

    def test_getitem(self):
        t = Tensor(np.arange(10, dtype=float))
        assert np.allclose(t[2:5].data, [2.0, 3.0, 4.0])

    def test_concat_and_stack(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        assert Tensor.concat([a, b], axis=1).shape == (2, 5)
        c = Tensor.stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])])
        assert c.shape == (2, 2)


class TestGraphMechanics:
    def test_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        assert (a + 1).requires_grad
        assert not (Tensor([1.0]) + 1).requires_grad

    def test_backward_accumulates_on_leaves(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3).backward()
        (a * 3).backward()
        assert np.allclose(a.grad, [6.0])  # fresh graph each time

    def test_shared_subexpression_grads_sum(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        (b + b).backward()
        assert np.allclose(a.grad, [6.0])

    def test_backward_requires_scalar_or_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            a.backward()
        a.backward(np.ones(2))
        assert np.allclose(a.grad, [1.0, 1.0])

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._backward is None

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        d = (a * 2).detach()
        assert not d.requires_grad

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestParameter:
    def test_parameter_requires_grad(self):
        assert Parameter([1.0]).requires_grad

    def test_copy_keeps_identity_and_checks_shape(self):
        p = Parameter(np.zeros(3))
        p.copy_(np.ones(3))
        assert np.allclose(p.data, 1.0)
        with pytest.raises(ValueError):
            p.copy_(np.ones(4))

    def test_parameter_op_returns_plain_tensor(self):
        p = Parameter(np.ones((2, 2)))
        out = p.T  # must not try Parameter.__init__ with kwargs
        assert type(out) is type(Tensor(0.0))


class TestUnbroadcast:
    def test_sums_added_leading_axes(self):
        grad = np.ones((4, 2, 3))
        assert _unbroadcast(grad, (2, 3)).shape == (2, 3)
        assert np.allclose(_unbroadcast(grad, (2, 3)), 4.0)

    def test_sums_singleton_axes(self):
        grad = np.ones((2, 3))
        out = _unbroadcast(grad, (2, 1))
        assert out.shape == (2, 1)
        assert np.allclose(out, 3.0)
