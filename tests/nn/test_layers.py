"""Tests for Module bookkeeping, Linear/MLP layers and state dicts."""

import numpy as np
import pytest

from repro.nn import MLP, Linear, Module, ReLU, Sequential, Sigmoid, Tensor


class TestModuleBookkeeping:
    def test_named_parameters_nested(self):
        mlp = MLP([3, 4, 2], rng=np.random.default_rng(0))
        names = [n for n, _ in mlp.named_parameters()]
        assert "m0.weight" in names and "m0.bias" in names
        assert "m2.weight" in names and "m2.bias" in names

    def test_num_parameters(self):
        linear = Linear(3, 4, rng=np.random.default_rng(0))
        assert linear.num_parameters() == 3 * 4 + 4

    def test_zero_grad_clears_all(self):
        mlp = MLP([2, 3, 1], rng=np.random.default_rng(0))
        out = mlp(Tensor(np.ones((5, 2)))).sum()
        out.backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestStateDict:
    def test_round_trip(self):
        rng = np.random.default_rng(1)
        a = MLP([3, 4, 2], rng=rng)
        b = MLP([3, 4, 2], rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = np.ones((2, 3))
        assert np.allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_state_dict_is_deep_copy(self):
        mlp = MLP([2, 2], rng=np.random.default_rng(0))
        state = mlp.state_dict()
        state["m0.weight"][:] = 99.0
        assert not np.allclose(mlp.m0.weight.data, 99.0)

    def test_mismatched_state_raises(self):
        mlp = MLP([2, 2], rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            mlp.load_state_dict({"nope": np.zeros(1)})

    def test_flat_parameters_round_trip(self):
        mlp = MLP([3, 5, 2], rng=np.random.default_rng(0))
        flat = mlp.flat_parameters()
        assert flat.size == mlp.num_parameters()
        mlp.load_flat_parameters(flat * 2.0)
        assert np.allclose(mlp.flat_parameters(), flat * 2.0)

    def test_flat_parameters_size_check(self):
        mlp = MLP([2, 2], rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            mlp.load_flat_parameters(np.zeros(3))


class TestLinear:
    def test_output_shape_and_affine(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 4, rng=rng)
        x = rng.normal(size=(5, 3))
        out = layer(Tensor(x))
        assert out.shape == (5, 4)
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0), bias=False)
        assert layer.bias is None
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight"]

    def test_repr(self):
        assert repr(Linear(2, 3, rng=np.random.default_rng(0))) \
            == "Linear(2, 3)"


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(2, 2, rng=rng), ReLU())
        x = np.array([[-10.0, -10.0]])
        out = seq(Tensor(x))
        assert np.all(out.data >= 0)

    def test_sequential_iterable_and_repr(self):
        seq = Sequential(ReLU(), Sigmoid())
        mods = list(seq)
        assert len(mods) == 2
        assert "ReLU()" in repr(seq) and "Sigmoid()" in repr(seq)

    def test_mlp_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([3])

    def test_mlp_hidden_relu_final_linear(self):
        mlp = MLP([2, 4, 1], rng=np.random.default_rng(0))
        # Negative-going output is possible => final layer is not ReLU'd.
        out = mlp(Tensor(np.random.default_rng(1).normal(size=(50, 2))))
        assert (out.data < 0).any() or (out.data > 0).any()

    def test_mlp_final_activation(self):
        mlp = MLP([2, 3, 2], rng=np.random.default_rng(0),
                  final_activation=Sigmoid())
        out = mlp(Tensor(np.random.default_rng(1).normal(size=(10, 2)) * 10))
        assert np.all(out.data >= 0) and np.all(out.data <= 1)

    def test_mlp_sizes_recorded(self):
        assert MLP([4, 3, 2], rng=np.random.default_rng(0)).sizes == (4, 3, 2)
