"""Integration-level tests for the LTE framework and sessions."""

import numpy as np
import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_sdss
from repro.explore import ConjunctiveOracle, run_lte_exploration


def quick_config(**overrides):
    defaults = dict(
        budget=20, ku=30, kq=40, n_tasks=10,
        meta=MetaHyperParams(epochs=1, local_steps=3, batch_size=5,
                             pretrain_epochs=1),
        basic_steps=20, online_steps=5,
    )
    defaults.update(overrides)
    return LTEConfig(**defaults)


@pytest.fixture(scope="module")
def fitted_lte():
    table = make_sdss(n_rows=3000, seed=21)
    lte = LTE(quick_config())
    lte.fit_offline(table)
    return lte


@pytest.fixture(scope="module")
def oracle(fitted_lte):
    from repro.bench import subspace_region
    regions = {}
    rng = np.random.default_rng(5)
    for subspace in list(fitted_lte.states)[:2]:
        state = fitted_lte.states[subspace]
        regions[subspace] = subspace_region(
            state, UISMode(1, 12), seed=int(rng.integers(2 ** 31)))
    return ConjunctiveOracle(regions)


class TestConfig:
    def test_ks_derived_from_budget(self):
        assert LTEConfig(budget=30, delta=5).ks == 25

    def test_budget_must_exceed_delta(self):
        with pytest.raises(ValueError):
            LTEConfig(budget=5, delta=5).ks


class TestOffline:
    def test_states_cover_decomposition(self, fitted_lte):
        assert len(fitted_lte.states) == 4  # 8 attrs in 2-D groups
        for state in fitted_lte.states.values():
            assert state.trainer is not None
            assert state.preprocessor.width > 0

    def test_offline_time_recorded(self, fitted_lte):
        assert fitted_lte.offline_seconds_ > 0

    def test_train_false_skips_training(self):
        table = make_sdss(n_rows=2000, seed=22)
        lte = LTE(quick_config())
        lte.fit_offline(table, train=False)
        assert all(s.trainer is None for s in lte.states.values())

    def test_explicit_subspaces(self):
        from repro.data.subspaces import Subspace
        table = make_sdss(n_rows=2000, seed=23)
        sub = Subspace(["ra", "dec"], [2, 3])
        lte = LTE(quick_config())
        lte.fit_offline(table, subspaces=[sub])
        assert list(lte.states) == [sub]


class TestSession:
    def test_variant_validation(self, fitted_lte):
        with pytest.raises(ValueError):
            fitted_lte.start_session(variant="super")

    def test_session_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LTE(quick_config()).start_session()

    def test_unknown_subspace_raises(self, fitted_lte):
        from repro.data.subspaces import Subspace
        with pytest.raises(KeyError):
            fitted_lte.start_session(
                subspaces=[Subspace(["nope"], [0])])

    def test_initial_tuples_budget(self, fitted_lte):
        session = fitted_lte.start_session(variant="meta")
        tuples = session.initial_tuples()
        for subspace, pts in tuples.items():
            assert len(pts) == fitted_lte.config.budget
        assert session.total_budget == 4 * fitted_lte.config.budget

    def test_predict_before_labels_raises(self, fitted_lte):
        session = fitted_lte.start_session(variant="meta")
        with pytest.raises(RuntimeError):
            session.predict(fitted_lte.table.data[:5])

    def test_label_count_validated(self, fitted_lte):
        session = fitted_lte.start_session(variant="meta")
        subspace = session.subspaces[0]
        with pytest.raises(ValueError):
            session.submit_labels(subspace, np.ones(3))

    def test_adapt_seconds_none_until_all_labelled(self, fitted_lte, oracle):
        subspaces = list(oracle.subspace_regions)
        session = fitted_lte.start_session(variant="meta",
                                           subspaces=subspaces)
        assert session.adapt_seconds is None
        for subspace, pts in session.initial_tuples().items():
            session.submit_labels(subspace,
                                  oracle.label_subspace(subspace, pts))
        assert session.adapt_seconds > 0


class TestVariants:
    @pytest.mark.parametrize("variant", ["basic", "meta", "meta_star"])
    def test_end_to_end_prediction(self, fitted_lte, oracle, variant):
        rows = fitted_lte.table.sample_rows(300, seed=1)
        result = run_lte_exploration(
            fitted_lte, oracle, rows, variant=variant,
            subspaces=list(oracle.subspace_regions))
        assert 0.0 <= result.f1 <= 1.0
        assert result.predictions.shape == (300,)
        assert set(np.unique(result.predictions)) <= {0, 1}
        assert result.labels_used == 2 * fitted_lte.config.budget

    def test_meta_star_has_optimizer(self, fitted_lte, oracle):
        subspaces = list(oracle.subspace_regions)
        session = fitted_lte.start_session(variant="meta_star",
                                           subspaces=subspaces)
        for subspace, pts in session.initial_tuples().items():
            session.submit_labels(subspace,
                                  oracle.label_subspace(subspace, pts))
        subsession = session._subsessions[subspaces[0]]
        assert subsession.optimizer is not None

    def test_meta_has_no_optimizer(self, fitted_lte, oracle):
        subspaces = list(oracle.subspace_regions)
        session = fitted_lte.start_session(variant="meta",
                                           subspaces=subspaces)
        for subspace, pts in session.initial_tuples().items():
            session.submit_labels(subspace,
                                  oracle.label_subspace(subspace, pts))
        assert session._subsessions[subspaces[0]].optimizer is None

    def test_prediction_is_conjunction(self, fitted_lte, oracle):
        subspaces = list(oracle.subspace_regions)
        session = fitted_lte.start_session(variant="meta",
                                           subspaces=subspaces)
        for subspace, pts in session.initial_tuples().items():
            session.submit_labels(subspace,
                                  oracle.label_subspace(subspace, pts))
        rows = fitted_lte.table.sample_rows(200, seed=2)
        joint = session.predict(rows)
        per_subspace = np.ones(len(rows), dtype=int)
        for subspace in subspaces:
            per_subspace &= session.predict_subspace(
                subspace, subspace.project(rows))
        assert np.array_equal(joint, per_subspace)
