"""Determinism guarantees: identical seeds -> identical artifacts.

Reproducibility is a headline property for a reproduction package; these
tests pin it at every level of the stack.
"""

import numpy as np

from repro.core import LTE, LTEConfig
from repro.core.meta_task import MetaTaskGenerator
from repro.core.meta_training import MetaHyperParams, MetaTrainer
from repro.core.uis import UISMode
from repro.data import make_sdss


def small_lte():
    table = make_sdss(n_rows=2000, seed=91)
    lte = LTE(LTEConfig(budget=15, ku=20, kq=25, n_tasks=5,
                        meta=MetaHyperParams(epochs=1, local_steps=2,
                                             batch_size=3,
                                             pretrain_epochs=1),
                        online_steps=3, seed=42))
    lte.fit_offline(table)
    return lte


class TestGeneratorDeterminism:
    def test_same_seed_same_tasks(self):
        rng_data = np.random.default_rng(0).uniform(size=(800, 2))
        gens = [MetaTaskGenerator(rng_data, ku=15, ks=6, kq=10,
                                  mode=UISMode(2, 5), seed=7)
                for _ in range(2)]
        a = gens[0].generate_task()
        b = gens[1].generate_task()
        assert np.allclose(a.support_x, b.support_x)
        assert np.array_equal(a.support_y, b.support_y)
        assert np.allclose(a.feature_vector, b.feature_vector)

    def test_different_seed_different_tasks(self):
        rng_data = np.random.default_rng(0).uniform(size=(800, 2))
        a = MetaTaskGenerator(rng_data, ku=15, ks=6, kq=10,
                              mode=UISMode(2, 5), seed=7).generate_task()
        b = MetaTaskGenerator(rng_data, ku=15, ks=6, kq=10,
                              mode=UISMode(2, 5), seed=8).generate_task()
        assert not np.array_equal(a.feature_vector, b.feature_vector) \
            or not np.allclose(a.support_y, b.support_y)


class TestTrainerDeterminism:
    def test_same_seed_same_phi(self):
        data = np.random.default_rng(1).uniform(size=(600, 2))
        gen = MetaTaskGenerator(data, ku=12, ks=5, kq=8,
                                mode=UISMode(1, 4), seed=3)
        tasks = gen.generate(4)
        encode = lambda pts: pts  # identity: raw 2-D features

        def train():
            trainer = MetaTrainer(
                ku=12, input_width=2, embed_size=6, hidden_size=4,
                params=MetaHyperParams(epochs=1, local_steps=2,
                                       batch_size=2, pretrain_epochs=1),
                seed=5)
            trainer.train(tasks, encode)
            return trainer.model.flat_parameters()

        assert np.allclose(train(), train())


class TestEndToEndDeterminism:
    def test_same_config_same_predictions(self):
        def run():
            lte = small_lte()
            subspace = list(lte.states)[0]
            session = lte.start_session(variant="meta",
                                        subspaces=[subspace])
            tuples = session.initial_tuples()[subspace]
            labels = (tuples[:, 0] > np.median(tuples[:, 0])).astype(int)
            session.submit_labels(subspace, labels)
            return session.predict(lte.table.data[:150])

        assert np.array_equal(run(), run())
