"""Tests for the auxiliary IDE modules: convergence estimate, final
retrieval, dynamic maintenance (drift), and persistence."""

import numpy as np
import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import Table, make_sdss
from repro.explore import ConjunctiveOracle


@pytest.fixture(scope="module")
def system():
    from repro.bench import subspace_region
    table = make_sdss(n_rows=3000, seed=61)
    lte = LTE(LTEConfig(budget=20, ku=30, kq=40, n_tasks=10,
                        meta=MetaHyperParams(epochs=1, local_steps=3,
                                             pretrain_epochs=1),
                        basic_steps=15, online_steps=5))
    lte.fit_offline(table)
    subspace = list(lte.states)[0]
    region = subspace_region(lte.states[subspace], UISMode(1, 12), seed=4)
    oracle = ConjunctiveOracle({subspace: region})
    return lte, table, subspace, oracle


def labelled_session(lte, subspace, oracle, variant="meta_star"):
    session = lte.start_session(variant=variant, subspaces=[subspace])
    tuples = session.initial_tuples()[subspace]
    session.submit_labels(subspace, oracle.label_subspace(subspace, tuples))
    return session


class TestConvergence:
    def test_estimate_in_unit_interval(self, system):
        lte, _, subspace, oracle = system
        session = labelled_session(lte, subspace, oracle)
        estimate = session.convergence_estimate(subspace, sample_rows=200)
        assert 0.0 <= estimate <= 1.0

    def test_requires_meta_star(self, system):
        lte, _, subspace, oracle = system
        session = labelled_session(lte, subspace, oracle, variant="meta")
        with pytest.raises(RuntimeError):
            session.convergence_estimate(subspace)


class TestRetrieve:
    def test_retrieved_rows_predicted_interesting(self, system):
        lte, table, subspace, oracle = system
        session = labelled_session(lte, subspace, oracle)
        rows = table.sample_rows(400, seed=0)
        retrieved = session.retrieve(rows)
        if len(retrieved):
            assert (session.predict(retrieved) == 1).all()

    def test_limit(self, system):
        lte, table, subspace, oracle = system
        session = labelled_session(lte, subspace, oracle)
        retrieved = session.retrieve(table.sample_rows(400, seed=0), limit=3)
        assert len(retrieved) <= 3

    def test_defaults_to_full_table(self, system):
        lte, table, subspace, oracle = system
        session = labelled_session(lte, subspace, oracle)
        retrieved = session.retrieve()
        assert retrieved.shape[1] == table.n_attributes


class TestDrift:
    def test_same_distribution_near_zero(self, system):
        lte, table, _, _ = system
        scores = lte.drift_scores(table)
        assert set(scores) == set(lte.states)
        for score in scores.values():
            assert abs(score) < 0.5

    def test_shifted_distribution_detected(self, system):
        lte, table, _, _ = system
        # Shift + squash one attribute pair far outside the training range.
        shifted = table.data.copy()
        shifted[:, :] = shifted[:, :] * 0.2 + shifted.max(axis=0) * 2
        drifted = Table("drifted", table.attributes, shifted)
        scores = lte.drift_scores(drifted)
        assert max(scores.values()) > 0.5

    def test_refresh_rebuilds_state(self, system):
        lte, table, subspace, _ = system
        old_state = lte.states[subspace]
        new_state = lte.refresh_subspace(table, subspace, train=False)
        assert new_state is lte.states[subspace]
        assert new_state is not old_state
        assert new_state.trainer is None
        # Restore a trained state for other tests.
        lte.train_subspace(subspace)


class TestPersistence:
    def test_save_load_round_trip(self, system, tmp_path):
        lte, table, subspace, oracle = system
        path = tmp_path / "lte.pkl"
        lte.save(path)
        loaded = LTE.load(path)
        assert set(loaded.states) == set(lte.states)
        session = labelled_session(loaded, subspace, oracle)
        preds = session.predict(table.sample_rows(100, seed=1))
        assert preds.shape == (100,)

    def test_load_rejects_non_lte(self, tmp_path):
        import pickle
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"not": "lte"}, fh)
        with pytest.raises(TypeError):
            LTE.load(path)
