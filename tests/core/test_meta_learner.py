"""Tests for the UIS classifier architecture."""

import numpy as np
import pytest

from repro.core.meta_learner import UISClassifier
from repro.nn import no_grad


def make_model(use_conversion=False):
    return UISClassifier(ku=10, input_width=6, embed_size=8, hidden_size=5,
                         use_conversion=use_conversion, seed=0)


def inputs(n=7, seed=1):
    rng = np.random.default_rng(seed)
    v_r = rng.integers(0, 2, size=10).astype(float)
    x = rng.normal(size=(n, 6))
    return v_r, x


class TestForward:
    def test_logit_shape(self):
        model = make_model()
        v_r, x = inputs()
        assert model.forward(v_r, x).shape == (7,)

    def test_single_row_input(self):
        model = make_model()
        v_r, x = inputs()
        assert model.forward(v_r, x[0]).shape == (1,)

    def test_conversion_required_when_enabled(self):
        model = make_model(use_conversion=True)
        v_r, x = inputs()
        with pytest.raises(ValueError):
            model.forward(v_r, x)
        conv = np.random.default_rng(0).normal(size=(8, 24)) * 0.1
        assert model.forward(v_r, x, conversion=conv).shape == (7,)

    def test_conversion_rejected_when_disabled(self):
        model = make_model(use_conversion=False)
        v_r, x = inputs()
        with pytest.raises(ValueError):
            model.forward(v_r, x, conversion=np.zeros((8, 24)))

    def test_feature_vector_changes_output(self):
        model = make_model()
        _, x = inputs()
        out_a = model.forward(np.zeros(10), x).data
        out_b = model.forward(np.ones(10), x).data
        assert not np.allclose(out_a, out_b)


class TestPredict:
    def test_proba_in_unit_interval(self):
        model = make_model()
        v_r, x = inputs()
        proba = model.predict_proba(v_r, x)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_predict_threshold(self):
        model = make_model()
        v_r, x = inputs()
        proba = model.predict_proba(v_r, x)
        assert np.array_equal(model.predict(v_r, x),
                              (proba >= 0.5).astype(int))
        assert model.predict(v_r, x, threshold=1.1).sum() == 0

    def test_predict_builds_no_graph(self):
        model = make_model()
        v_r, x = inputs()
        model.predict(v_r, x)
        assert all(p.grad is None for p in model.parameters())


class TestCloneAndThetaR:
    def test_clone_is_equal_but_independent(self):
        model = make_model()
        twin = model.clone()
        v_r, x = inputs()
        assert np.allclose(model.predict_proba(v_r, x),
                           twin.predict_proba(v_r, x))
        twin.uis_block.m0.weight.data[:] = 0.0
        assert not np.allclose(model.uis_block.m0.weight.data, 0.0)

    def test_theta_r_flat_round_trip(self):
        model = make_model()
        flat = model.get_theta_r_flat()
        assert flat.size == model.theta_r_size
        model.set_theta_r_flat(flat * 2)
        assert np.allclose(model.get_theta_r_flat(), flat * 2)

    def test_theta_r_covers_only_uis_block(self):
        model = make_model()
        assert model.theta_r_size == model.uis_block.num_parameters()

    def test_from_config(self):
        model = make_model(use_conversion=True)
        rebuilt = UISClassifier.from_config(model.config, seed=0)
        assert rebuilt.config == model.config


class TestArchitecture:
    def test_conversion_variant_has_smaller_clf_input(self):
        plain = make_model(use_conversion=False)
        mem = make_model(use_conversion=True)
        # Plain takes the 3Ne concat; memory variant takes the Ne conversion.
        assert plain.clf_block.sizes[0] == 3 * 8
        assert mem.clf_block.sizes[0] == 8

    def test_embeddings_are_relu_nonnegative(self):
        model = make_model()
        v_r, x = inputs()
        with no_grad():
            emb = model.tuple_block(x)
        assert (emb.data >= 0).all()
