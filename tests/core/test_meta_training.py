"""Tests for the meta-training loop (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.meta_training import (AdaptedClassifier, MetaHyperParams,
                                      MetaTrainer)


def small_params(**overrides):
    defaults = dict(epochs=1, local_steps=3, batch_size=4,
                    pretrain_epochs=1, rho=0.02, lam=1e-3)
    defaults.update(overrides)
    return MetaHyperParams(**defaults)


def make_trainer(preprocessor, task_generator, use_memories=True, **overrides):
    return MetaTrainer(ku=task_generator.summary.ku,
                       input_width=preprocessor.width,
                       embed_size=16, hidden_size=8,
                       params=small_params(**overrides),
                       use_memories=use_memories, seed=0)


class TestHyperParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MetaHyperParams(eta=2.0)
        with pytest.raises(ValueError):
            MetaHyperParams(rho=0.0)
        with pytest.raises(ValueError):
            MetaHyperParams(lam=-1.0)
        with pytest.raises(ValueError):
            MetaHyperParams(local_optimizer="rmsprop")

    def test_defaults_paper_like(self):
        p = MetaHyperParams()
        assert p.m == 4
        assert p.local_optimizer == "adam"


class TestAdapt:
    def test_adapt_reduces_support_loss(self, preprocessor, meta_tasks,
                                        task_generator):
        trainer = make_trainer(preprocessor, task_generator)
        task = meta_tasks[0]
        encoded = preprocessor.transform(task.support_x)
        _, info_few = trainer.adapt(task.feature_vector, encoded,
                                    task.support_y, local_steps=1)
        _, info_many = trainer.adapt(task.feature_vector, encoded,
                                     task.support_y, local_steps=25)
        assert info_many["support_loss"] < info_few["support_loss"]

    def test_adapt_does_not_mutate_meta_model(self, preprocessor, meta_tasks,
                                              task_generator):
        trainer = make_trainer(preprocessor, task_generator)
        task = meta_tasks[0]
        before = trainer.model.flat_parameters().copy()
        trainer.adapt(task.feature_vector,
                      preprocessor.transform(task.support_x),
                      task.support_y, local_steps=5)
        assert np.allclose(trainer.model.flat_parameters(), before)

    def test_adapt_returns_memory_info(self, preprocessor, meta_tasks,
                                       task_generator):
        trainer = make_trainer(preprocessor, task_generator)
        task = meta_tasks[0]
        adapted, info = trainer.adapt(
            task.feature_vector, preprocessor.transform(task.support_x),
            task.support_y)
        assert info["attention"].shape == (trainer.params.m,)
        assert info["theta_r_grad"].shape == (trainer.model.theta_r_size,)
        assert adapted.conversion is not None

    def test_adapt_without_memories(self, preprocessor, meta_tasks,
                                    task_generator):
        trainer = make_trainer(preprocessor, task_generator,
                               use_memories=False)
        task = meta_tasks[0]
        adapted, info = trainer.adapt(
            task.feature_vector, preprocessor.transform(task.support_x),
            task.support_y)
        assert info["attention"] is None
        assert adapted.conversion is None
        assert trainer.memories is None

    def test_sgd_local_optimizer_path(self, preprocessor, meta_tasks,
                                      task_generator):
        trainer = make_trainer(preprocessor, task_generator,
                               local_optimizer="sgd")
        task = meta_tasks[0]
        adapted, _ = trainer.adapt(
            task.feature_vector, preprocessor.transform(task.support_x),
            task.support_y)
        assert isinstance(adapted, AdaptedClassifier)


class TestTrain:
    def test_train_changes_phi_and_memories(self, preprocessor, meta_tasks,
                                            task_generator):
        trainer = make_trainer(preprocessor, task_generator)
        phi_before = trainer.model.flat_parameters().copy()
        mvr_before = trainer.memories.M_vR.copy()
        trainer.train(meta_tasks, preprocessor.transform)
        assert not np.allclose(trainer.model.flat_parameters(), phi_before)
        assert not np.allclose(trainer.memories.M_vR, mvr_before)

    def test_history_length_matches_epochs(self, preprocessor, meta_tasks,
                                           task_generator):
        trainer = make_trainer(preprocessor, task_generator, epochs=2)
        trainer.train(meta_tasks, preprocessor.transform)
        assert len(trainer.history) == 2

    def test_progress_callback(self, preprocessor, meta_tasks,
                               task_generator):
        trainer = make_trainer(preprocessor, task_generator)
        seen = []
        trainer.train(meta_tasks, preprocessor.transform,
                      progress=lambda e, loss: seen.append((e, loss)))
        assert seen and seen[0][0] == 0

    def test_pretraining_alone_learns(self, preprocessor, meta_tasks,
                                      task_generator):
        """Joint pretraining should beat a random model on query accuracy."""
        untrained = make_trainer(preprocessor, task_generator,
                                 pretrain_epochs=0, epochs=0)
        trained = make_trainer(preprocessor, task_generator,
                               pretrain_epochs=4, epochs=0)
        # epochs=0 forbidden by train loop range, use epochs=1 w/ lam tiny
        untrained.params.epochs = 1
        trained.params.epochs = 1
        acc_untrained = _query_accuracy(untrained, meta_tasks, preprocessor)
        trained.train(meta_tasks, preprocessor.transform, epochs=1)
        acc_trained = _query_accuracy(trained, meta_tasks, preprocessor)
        assert acc_trained >= acc_untrained - 0.05

    def test_evaluate_returns_unit_interval(self, preprocessor, meta_tasks,
                                            task_generator):
        trainer = make_trainer(preprocessor, task_generator)
        trainer.train(meta_tasks[:6], preprocessor.transform)
        acc = trainer.evaluate(meta_tasks[6:9], preprocessor.transform)
        assert 0.0 <= acc <= 1.0


def _query_accuracy(trainer, tasks, preprocessor):
    scores = []
    for task in tasks[:5]:
        adapted, _ = trainer.adapt(
            task.feature_vector, preprocessor.transform(task.support_x),
            task.support_y, local_steps=3)
        pred = adapted.predict(preprocessor.transform(task.query_x))
        scores.append(float(np.mean(pred == task.query_y)))
    return float(np.mean(scores))
