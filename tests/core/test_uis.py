"""Tests for simulated-UIS formulation (Section V-C)."""

import numpy as np
import pytest

from repro.core.uis import PAPER_MODES, UISGenerator, UISMode
from repro.ml import pairwise_distances


def center_grid(side=6):
    xs, ys = np.meshgrid(np.arange(side, dtype=float),
                         np.arange(side, dtype=float))
    return np.column_stack([xs.ravel(), ys.ravel()])


class TestUISMode:
    def test_paper_modes_match_table_iii(self):
        assert PAPER_MODES["M1"] == UISMode(4, 20)
        assert PAPER_MODES["M4"] == UISMode(4, 5)
        assert PAPER_MODES["M5"] == UISMode(1, 20)
        assert PAPER_MODES["M7"] == UISMode(3, 20)
        assert len(PAPER_MODES) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            UISMode(alpha=0, psi=5)
        with pytest.raises(ValueError):
            UISMode(alpha=1, psi=1)

    def test_hashable(self):
        assert len({UISMode(1, 5), UISMode(1, 5)}) == 1


class TestUISGenerator:
    def make(self, mode, seed=0):
        centers = center_grid()
        prox = pairwise_distances(centers, centers)
        return UISGenerator(centers, prox, mode, seed=seed), centers

    def test_region_parts_match_alpha(self):
        gen, _ = self.make(UISMode(alpha=3, psi=5))
        region, _ = gen.generate()
        assert region.n_parts == 3

    def test_member_mask_consistent_with_region(self):
        gen, centers = self.make(UISMode(alpha=2, psi=6), seed=1)
        region, mask = gen.generate()
        assert np.array_equal(mask, region.contains(centers))

    def test_seed_center_always_member(self):
        # The hull circumscribes the seed's psi nearest neighbours which
        # include the seed itself, so at least psi centers are members.
        gen, _ = self.make(UISMode(alpha=1, psi=8), seed=2)
        _, mask = gen.generate()
        assert mask.sum() >= 8

    def test_larger_psi_covers_more_centers(self):
        gen_small, _ = self.make(UISMode(alpha=1, psi=4), seed=3)
        gen_large, _ = self.make(UISMode(alpha=1, psi=20), seed=3)
        _, small = gen_small.generate()
        _, large = gen_large.generate()
        assert large.sum() >= small.sum()

    def test_batch(self):
        gen, _ = self.make(UISMode(alpha=1, psi=5))
        batch = gen.generate_batch(4)
        assert len(batch) == 4

    def test_psi_exceeding_centers_raises(self):
        centers = center_grid(3)  # 9 centers
        prox = pairwise_distances(centers, centers)
        with pytest.raises(ValueError):
            UISGenerator(centers, prox, UISMode(alpha=1, psi=10))

    def test_bad_proximity_shape(self):
        centers = center_grid(3)
        with pytest.raises(ValueError):
            UISGenerator(centers, np.zeros((2, 2)), UISMode(1, 3))

    def test_deterministic_given_seed(self):
        gen_a, centers = self.make(UISMode(alpha=2, psi=6), seed=9)
        gen_b, _ = self.make(UISMode(alpha=2, psi=6), seed=9)
        _, mask_a = gen_a.generate()
        _, mask_b = gen_b.generate()
        assert np.array_equal(mask_a, mask_b)

    def test_disconnected_region_possible(self):
        # With alpha parts of small psi on a grid, some draws must produce
        # regions whose member centers are not contiguous.
        gen, centers = self.make(UISMode(alpha=2, psi=4), seed=0)
        found_disconnected = False
        for _ in range(30):
            region, mask = gen.generate()
            members = centers[mask]
            if len(members) and region.n_parts == 2:
                # Crude disconnect check: hull parts far apart.
                h0, h1 = region.hulls
                gap = pairwise_distances(h0.points, h1.points).min()
                if gap > 2.0:
                    found_disconnected = True
                    break
        assert found_disconnected
