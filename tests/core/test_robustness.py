"""Failure-injection and degenerate-input robustness tests."""

import numpy as np
import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.data import Attribute, Table, make_car


def tiny_config(**overrides):
    defaults = dict(budget=15, ku=20, kq=25, n_tasks=6,
                    meta=MetaHyperParams(epochs=1, local_steps=2,
                                         batch_size=3, pretrain_epochs=1),
                    basic_steps=10, online_steps=3)
    defaults.update(overrides)
    return LTEConfig(**defaults)


@pytest.fixture(scope="module")
def car_lte():
    """CAR has 5 attributes -> a 2D + 2D + 1D decomposition."""
    table = make_car(n_rows=2500, seed=81)
    lte = LTE(tiny_config())
    lte.fit_offline(table)
    return lte


class TestDegenerateLabels:
    @pytest.mark.parametrize("variant", ["basic", "meta", "meta_star"])
    @pytest.mark.parametrize("fill", [0, 1])
    def test_constant_labels_do_not_crash(self, car_lte, variant, fill):
        subspace = list(car_lte.states)[0]
        session = car_lte.start_session(variant=variant,
                                        subspaces=[subspace])
        tuples = session.initial_tuples()[subspace]
        session.submit_labels(subspace, np.full(len(tuples), fill))
        preds = session.predict_subspace(
            subspace, subspace.project(car_lte.table.data[:200]))
        assert preds.shape == (200,)
        assert set(np.unique(preds)) <= {0, 1}


class TestOneDimensionalSubspace:
    def test_decomposition_includes_1d(self, car_lte):
        dims = sorted(s.dim for s in car_lte.states)
        assert dims == [1, 2, 2]

    def test_full_session_over_all_subspaces(self, car_lte):
        # Exercises 1-D hulls, 1-D UIS generation, 1-D preprocessing.
        session = car_lte.start_session(variant="meta_star")
        for subspace, tuples in session.initial_tuples().items():
            labels = (tuples[:, 0] > np.median(tuples[:, 0])).astype(int)
            session.submit_labels(subspace, labels)
        preds = session.predict(car_lte.table.data[:300])
        assert preds.shape == (300,)


class TestDegenerateTables:
    def test_constant_attribute_survives_offline(self):
        rng = np.random.default_rng(0)
        data = np.column_stack([np.full(800, 7.0),
                                rng.normal(size=800)])
        table = Table("const", [Attribute("flat"), Attribute("noise")], data)
        lte = LTE(tiny_config())
        lte.fit_offline(table)
        assert len(lte.states) == 1

    def test_small_table(self):
        rng = np.random.default_rng(1)
        table = Table("small", ["a", "b"], rng.normal(size=(300, 2)))
        lte = LTE(tiny_config())
        lte.fit_offline(table)
        subspace = list(lte.states)[0]
        session = lte.start_session(variant="meta", subspaces=[subspace])
        tuples = session.initial_tuples()[subspace]
        session.submit_labels(subspace,
                              (tuples[:, 0] > 0).astype(int))
        assert session.predict(table.data[:50]).shape == (50,)


class TestOutOfRangeQueries:
    def test_predict_far_outside_training_range(self, car_lte):
        subspace = list(car_lte.states)[0]
        session = car_lte.start_session(variant="meta",
                                        subspaces=[subspace])
        tuples = session.initial_tuples()[subspace]
        session.submit_labels(subspace,
                              (tuples[:, 0] > np.median(tuples[:, 0]))
                              .astype(int))
        wild = np.array([[1e9, -1e9], [0.0, 0.0]])
        preds = session.predict_subspace(subspace, wild)
        assert preds.shape == (2,)
        assert np.isfinite(preds).all()


class TestNonFiniteInputs:
    def test_nan_rows_rejected_or_handled(self, car_lte):
        subspace = list(car_lte.states)[0]
        session = car_lte.start_session(variant="meta",
                                        subspaces=[subspace])
        tuples = session.initial_tuples()[subspace]
        session.submit_labels(subspace,
                              (tuples[:, 0] > np.median(tuples[:, 0]))
                              .astype(int))
        bad = np.full((2, 2), np.nan)
        # NaNs must not silently become "interesting": predictions stay
        # binary (NaN comparisons are False throughout the pipeline).
        preds = session.predict_subspace(subspace, bad)
        assert set(np.unique(preds)) <= {0, 1}
