"""Tests for tabular preprocessing (Algorithm 3) and its encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preprocessing import (CenterAffinityEncoder, GMMEncoder,
                                      JKCEncoder, MinMaxEncoder,
                                      TabularPreprocessor)
from repro.data import Attribute


def bimodal(n=400, seed=0):
    rng = np.random.default_rng(seed)
    return np.concatenate([rng.normal(0, 1, n // 2),
                           rng.normal(20, 1, n // 2)])


class TestGMMEncoder:
    def test_width_and_one_hot(self):
        enc = GMMEncoder(n_components=4, seed=0).fit(bimodal())
        out = enc.transform(bimodal(seed=1)[:50])
        assert out.shape == (50, 5)
        onehot = out[:, :4]
        assert np.allclose(onehot.sum(axis=1), 1.0)
        assert set(np.unique(onehot)) <= {0.0, 1.0}

    def test_positional_part_in_unit_interval(self):
        enc = GMMEncoder(n_components=3, seed=0).fit(bimodal())
        out = enc.transform(np.linspace(-50, 50, 100))
        assert (out[:, -1] >= 0).all() and (out[:, -1] <= 1).all()

    def test_separated_modes_get_distinct_components(self):
        enc = GMMEncoder(n_components=2, seed=0).fit(bimodal())
        low = enc.transform(np.array([0.0]))[0, :2].argmax()
        high = enc.transform(np.array([20.0]))[0, :2].argmax()
        assert low != high

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            GMMEncoder().transform(np.zeros(3))


class TestJKCEncoder:
    def test_width_and_one_hot(self):
        enc = JKCEncoder(n_intervals=4, seed=0).fit(np.linspace(0, 1, 200))
        out = enc.transform(np.linspace(0, 1, 30))
        assert out.shape == (30, 5)
        assert np.allclose(out[:, :4].sum(axis=1), 1.0)

    def test_monotone_interval_assignment(self):
        enc = JKCEncoder(n_intervals=3, seed=0).fit(np.linspace(0, 10, 100))
        idx = enc.transform(np.array([0.5, 5.0, 9.5]))[:, :3].argmax(axis=1)
        assert list(idx) == sorted(idx)

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            JKCEncoder().transform(np.zeros(3))


class TestMinMaxEncoder:
    def test_scales_to_unit(self):
        enc = MinMaxEncoder().fit(np.array([10.0, 20.0]))
        assert np.allclose(enc.transform(np.array([10.0, 15.0, 20.0])).ravel(),
                           [0.0, 0.5, 1.0])

    def test_width_is_one(self):
        assert MinMaxEncoder().width == 1


class TestCenterAffinity:
    def test_nearest_center_has_highest_affinity(self):
        centers = np.array([[0.0, 0], [10, 10], [20, 0]])
        enc = CenterAffinityEncoder(centers)
        out = enc.transform(np.array([[0.5, 0.5], [19.0, 1.0]]))
        assert out[0].argmax() == 0
        assert out[1].argmax() == 2

    def test_affinity_in_unit_interval(self):
        centers = np.random.default_rng(0).normal(size=(10, 2))
        out = CenterAffinityEncoder(centers).transform(
            np.random.default_rng(1).normal(size=(20, 2)))
        assert (out > 0).all() and (out <= 1).all()

    def test_needs_two_centers(self):
        with pytest.raises(ValueError):
            CenterAffinityEncoder(np.zeros((1, 2)))


def two_col_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    return np.column_stack([bimodal(n, seed), rng.uniform(0, 1, n)])


class TestTabularPreprocessor:
    ATTRS = [Attribute("x", hint="modal"), Attribute("y", hint="interval")]

    def test_auto_mode_width(self):
        prep = TabularPreprocessor(self.ATTRS, n_components=4, seed=0)
        out = prep.fit_transform(two_col_data())
        assert prep.width == 2 * (4 + 1)
        assert out.shape == (400, prep.width)

    def test_both_mode_doubles_width(self):
        prep = TabularPreprocessor(self.ATTRS, mode="both", n_components=4,
                                   seed=0)
        prep.fit(two_col_data())
        assert prep.width == 2 * 2 * (4 + 1)

    def test_minmax_mode(self):
        prep = TabularPreprocessor(self.ATTRS, mode="minmax", seed=0)
        out = prep.fit_transform(two_col_data())
        assert prep.width == 2
        assert (out >= 0).all() and (out <= 1).all()

    def test_gmm_and_jkc_modes(self):
        for mode in ("gmm", "jkc"):
            prep = TabularPreprocessor(self.ATTRS, mode=mode, n_components=3,
                                       seed=0)
            prep.fit(two_col_data())
            assert prep.width == 2 * 4

    def test_attach_centers_extends_width(self):
        prep = TabularPreprocessor(self.ATTRS, n_components=4, seed=0)
        prep.fit(two_col_data())
        base = prep.width
        prep.attach_centers(np.random.default_rng(0).normal(size=(7, 2)))
        assert prep.width == base + 7
        out = prep.transform(two_col_data(seed=1)[:10])
        assert out.shape == (10, base + 7)

    def test_attach_centers_before_fit(self):
        prep = TabularPreprocessor(self.ATTRS, n_components=4, seed=0)
        prep.attach_centers(np.random.default_rng(0).normal(size=(5, 2)))
        prep.fit(two_col_data())
        assert prep.width == 2 * 5 + 5

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            TabularPreprocessor(self.ATTRS, mode="fourier")

    def test_column_count_checked(self):
        prep = TabularPreprocessor(self.ATTRS, seed=0).fit(two_col_data())
        with pytest.raises(ValueError):
            prep.transform(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            TabularPreprocessor(self.ATTRS, seed=0).fit(np.zeros((5, 3)))

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            TabularPreprocessor(self.ATTRS).transform(two_col_data())

    def test_values_bounded(self):
        prep = TabularPreprocessor(self.ATTRS, seed=0).fit(two_col_data())
        out = prep.transform(two_col_data(seed=2))
        assert (out >= 0).all() and (out <= 1).all()


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100))
def test_property_representation_deterministic(seed):
    attrs = [Attribute("x"), Attribute("y")]
    data = two_col_data(seed=seed)
    a = TabularPreprocessor(attrs, seed=1).fit_transform(data)
    b = TabularPreprocessor(attrs, seed=1).fit_transform(data)
    assert np.allclose(a, b)
