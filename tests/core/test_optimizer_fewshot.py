"""Tests for the few-shot FP/FN optimizer (Section VII-B)."""

import numpy as np
import pytest

from repro.core.meta_task import build_cluster_summary
from repro.core.optimizer import FewShotOptimizer


def grid_summary(seed=0):
    rng = np.random.default_rng(seed)
    data = rng.uniform(0, 10, size=(800, 2))
    return build_cluster_summary(data, ku=25, ks=8, kq=10, seed=seed)


class TestFit:
    def test_regions_built_from_positive_anchors(self):
        summary = grid_summary()
        labels = np.zeros(8)
        labels[0] = 1
        opt = FewShotOptimizer(summary).fit(labels)
        assert opt.outer_region is not None
        assert opt.inner_region is not None
        assert opt.outer_region.n_parts == 1

    def test_no_positive_anchors_gives_no_regions(self):
        summary = grid_summary()
        opt = FewShotOptimizer(summary).fit(np.zeros(8))
        assert opt.outer_region is None
        assert opt.inner_region is None

    def test_label_count_checked(self):
        opt = FewShotOptimizer(grid_summary())
        with pytest.raises(ValueError):
            opt.fit(np.ones(3))

    def test_ratio_validation(self):
        summary = grid_summary()
        with pytest.raises(ValueError):
            FewShotOptimizer(summary, n_sup_ratio=0.1, n_sub_ratio=0.5)
        with pytest.raises(ValueError):
            FewShotOptimizer(summary, n_sup_ratio=0.2, n_sub_ratio=0.0)

    def test_inner_smaller_than_outer(self):
        summary = grid_summary()
        labels = np.zeros(8)
        labels[2] = 1
        opt = FewShotOptimizer(summary, n_sup_ratio=0.4, n_sub_ratio=0.08)
        opt.fit(labels)
        rng = np.random.default_rng(1)
        probe = rng.uniform(0, 10, size=(500, 2))
        outer_cover = opt.outer_region.contains(probe).sum()
        inner_cover = opt.inner_region.contains(probe).sum()
        assert inner_cover <= outer_cover


class TestRefine:
    def setup_method(self):
        self.summary = grid_summary(seed=3)
        labels = np.zeros(8)
        labels[1] = 1
        self.opt = FewShotOptimizer(self.summary, n_sup_ratio=0.3,
                                    n_sub_ratio=0.1).fit(labels)
        rng = np.random.default_rng(4)
        self.points = rng.uniform(0, 10, size=(200, 2))

    def test_fp_demotion_outside_outer(self):
        preds = np.ones(len(self.points), dtype=int)
        refined = self.opt.refine(self.points, preds)
        outside = ~self.opt.outer_region.contains(self.points)
        assert (refined[outside] == 0).all()

    def test_fn_promotion_inside_inner(self):
        preds = np.zeros(len(self.points), dtype=int)
        refined = self.opt.refine(self.points, preds)
        inside = self.opt.inner_region.contains(self.points)
        assert (refined[inside] == 1).all()

    def test_refine_with_no_regions_is_identity(self):
        opt = FewShotOptimizer(self.summary).fit(np.zeros(8))
        preds = np.random.default_rng(5).integers(0, 2, len(self.points))
        assert np.array_equal(opt.refine(self.points, preds), preds)

    def test_refine_does_not_mutate_input(self):
        preds = np.ones(len(self.points), dtype=int)
        copy = preds.copy()
        self.opt.refine(self.points, preds)
        assert np.array_equal(preds, copy)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            self.opt.refine(self.points, np.ones(3))

    def test_middle_zone_follows_classifier(self):
        # Points inside outer but outside inner keep their prediction.
        preds = np.zeros(len(self.points), dtype=int)
        refined = self.opt.refine(self.points, preds)
        middle = (self.opt.outer_region.contains(self.points)
                  & ~self.opt.inner_region.contains(self.points))
        assert np.array_equal(refined[middle], preds[middle])
