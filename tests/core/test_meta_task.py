"""Tests for meta-task generation (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.meta_task import (MetaTaskGenerator, build_cluster_summary,
                                  expand_bits, uis_feature_vector)
from repro.core.uis import UISMode


class TestClusterSummary:
    def test_shapes(self, subspace_data):
        summary = build_cluster_summary(subspace_data, ku=20, ks=8, kq=30,
                                        seed=0)
        assert summary.centers_u.shape == (20, 2)
        assert summary.centers_s.shape == (8, 2)
        assert summary.centers_q.shape == (30, 2)
        assert summary.proximity_u.shape == (20, 20)
        assert summary.proximity_s.shape == (8, 20)

    def test_proximity_u_symmetric_zero_diagonal(self, subspace_data):
        summary = build_cluster_summary(subspace_data, ku=15, ks=5, kq=10,
                                        seed=1)
        assert np.allclose(summary.proximity_u, summary.proximity_u.T)
        assert np.allclose(np.diag(summary.proximity_u), 0, atol=1e-6)

    def test_k_properties(self, subspace_data):
        summary = build_cluster_summary(subspace_data, ku=12, ks=6, kq=9,
                                        seed=2)
        assert summary.ku == 12 and summary.ks == 6 and summary.kq == 9


class TestExpandBits:
    def grid_summary(self):
        return build_cluster_summary(
            np.random.default_rng(0).uniform(0, 10, size=(500, 2)),
            ku=20, ks=6, kq=8, seed=0)

    def test_zero_bits_give_zero_vector(self):
        summary = self.grid_summary()
        vec = expand_bits(np.zeros(6), summary.proximity_s, 20, expansion=3)
        assert vec.sum() == 0

    def test_each_set_bit_lights_expansion_neighbours(self):
        summary = self.grid_summary()
        bits = np.zeros(6)
        bits[2] = 1
        vec = expand_bits(bits, summary.proximity_s, 20, expansion=3)
        assert vec.sum() == 3
        expected = np.argsort(summary.proximity_s[2])[:3]
        assert np.allclose(np.flatnonzero(vec), np.sort(expected))

    def test_expansion_clipped_to_ku(self):
        summary = self.grid_summary()
        vec = expand_bits(np.ones(6), summary.proximity_s, 20, expansion=999)
        assert vec.sum() == 20

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            expand_bits(np.ones(3), np.zeros((4, 7)), 7, 2)

    def test_default_expansion_is_tenth_of_ku(self):
        summary = self.grid_summary()
        bits = np.zeros(6)
        bits[0] = 1
        vec = uis_feature_vector(bits, summary)
        assert vec.sum() == max(1, round(0.1 * 20))


class TestMetaTaskGenerator:
    def test_task_structure(self, task_generator):
        task = task_generator.generate_task()
        ks, kq = task_generator.summary.ks, task_generator.summary.kq
        assert task.support_x.shape == (ks + 5, 2)
        assert task.support_y.shape == (ks + 5,)
        assert task.query_x.shape == (kq + 5, 2)
        assert task.feature_vector.shape == (task_generator.summary.ku,)

    def test_labels_match_region_membership(self, task_generator):
        for _ in range(5):
            task = task_generator.generate_task()
            assert np.array_equal(task.support_y,
                                  task.region.label(task.support_x))
            assert np.array_equal(task.query_y,
                                  task.region.label(task.query_x))

    def test_support_prefix_is_cs_centers(self, task_generator):
        task = task_generator.generate_task()
        ks = task_generator.summary.ks
        assert np.allclose(task.support_x[:ks],
                           task_generator.summary.centers_s)

    def test_feature_vector_is_binary(self, task_generator):
        task = task_generator.generate_task()
        assert set(np.unique(task.feature_vector)) <= {0.0, 1.0}

    def test_generate_count(self, task_generator):
        assert len(task_generator.generate(7)) == 7
        with pytest.raises(ValueError):
            task_generator.generate(0)

    def test_positive_rate_property(self, task_generator):
        task = task_generator.generate_task()
        assert 0.0 <= task.positive_rate <= 1.0

    def test_no_delta(self, subspace_data):
        gen = MetaTaskGenerator(subspace_data, ku=15, ks=6, kq=10,
                                mode=UISMode(1, 5), delta=0, seed=0)
        task = gen.generate_task()
        assert task.support_x.shape == (6, 2)


@settings(max_examples=5, deadline=None)
@given(st.integers(0, 50))
def test_property_feature_vector_nonempty_iff_positive_center(seed):
    """v_R has set bits exactly when some C_s center is labelled positive."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(0, 10, size=(600, 2))
    gen = MetaTaskGenerator(data, ku=15, ks=6, kq=8, mode=UISMode(1, 5),
                            delta=3, seed=seed)
    task = gen.generate_task()
    has_positive_center = task.support_y[:6].any()
    assert bool(task.feature_vector.any()) == bool(has_positive_center)
