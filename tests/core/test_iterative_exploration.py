"""Tests for the iterative-exploration plug-in (add_labels, most_uncertain)
and the internal subspace normalization."""

import numpy as np
import pytest

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_sdss
from repro.explore import ConjunctiveOracle


@pytest.fixture(scope="module")
def lte_and_oracle():
    from repro.bench import subspace_region
    table = make_sdss(n_rows=3000, seed=51)
    lte = LTE(LTEConfig(budget=20, ku=30, kq=40, n_tasks=10,
                        meta=MetaHyperParams(epochs=1, local_steps=3,
                                             pretrain_epochs=1),
                        basic_steps=15, online_steps=5))
    lte.fit_offline(table)
    subspace = list(lte.states)[0]
    region = subspace_region(lte.states[subspace], UISMode(1, 12), seed=9)
    return lte, subspace, ConjunctiveOracle({subspace: region})


def started_session(lte, subspace, oracle, variant="meta"):
    session = lte.start_session(variant=variant, subspaces=[subspace])
    tuples = session.initial_tuples()[subspace]
    session.submit_labels(subspace, oracle.label_subspace(subspace, tuples))
    return session


class TestAddLabels:
    def test_add_labels_changes_predictions_possible(self, lte_and_oracle):
        lte, subspace, oracle = lte_and_oracle
        session = started_session(lte, subspace, oracle)
        raw = subspace.project(lte.table.data)
        extra = raw[:25]
        before = session.predict_subspace(subspace, raw[:200]).copy()
        session.add_labels(subspace, extra,
                           oracle.ground_truth_subspace(subspace, extra))
        after = session.predict_subspace(subspace, raw[:200])
        assert after.shape == before.shape  # re-adaptation ran end-to-end

    def test_add_labels_accumulates(self, lte_and_oracle):
        lte, subspace, oracle = lte_and_oracle
        session = started_session(lte, subspace, oracle)
        raw = subspace.project(lte.table.data)
        subsession = session._subsessions[subspace]
        session.add_labels(subspace, raw[:5], np.zeros(5))
        session.add_labels(subspace, raw[5:8], np.ones(3))
        assert len(subsession.extra_x) == 8
        assert subsession.extra_y.sum() == 3

    def test_add_labels_before_initial_raises(self, lte_and_oracle):
        lte, subspace, _ = lte_and_oracle
        session = lte.start_session(variant="meta", subspaces=[subspace])
        with pytest.raises(RuntimeError):
            session.add_labels(subspace, np.zeros((2, 2)), [0, 1])

    def test_add_labels_length_mismatch(self, lte_and_oracle):
        lte, subspace, oracle = lte_and_oracle
        session = started_session(lte, subspace, oracle)
        with pytest.raises(ValueError):
            session.add_labels(subspace, np.zeros((2, 2)), [0])

    def test_add_labels_basic_variant(self, lte_and_oracle):
        lte, subspace, oracle = lte_and_oracle
        session = started_session(lte, subspace, oracle, variant="basic")
        raw = subspace.project(lte.table.data)
        session.add_labels(subspace, raw[:4],
                           oracle.ground_truth_subspace(subspace, raw[:4]))
        assert session.predict_subspace(subspace, raw[:50]).shape == (50,)


class TestMostUncertain:
    def test_returns_k_valid_indices(self, lte_and_oracle):
        lte, subspace, oracle = lte_and_oracle
        session = started_session(lte, subspace, oracle)
        raw = subspace.project(lte.table.data)[:300]
        picks = session.most_uncertain(subspace, raw, k=7)
        assert len(picks) == 7
        assert (picks >= 0).all() and (picks < 300).all()

    def test_picks_are_nearest_half_probability(self, lte_and_oracle):
        lte, subspace, oracle = lte_and_oracle
        session = started_session(lte, subspace, oracle)
        raw = subspace.project(lte.table.data)[:300]
        subsession = session._subsessions[subspace]
        proba = subsession.adapted.predict_proba(
            subsession.state.encode(raw))
        picks = session.most_uncertain(subspace, raw, k=3)
        margins = np.abs(proba - 0.5)
        assert np.allclose(sorted(margins[picks]),
                           np.sort(margins)[:3])

    def test_before_labels_raises(self, lte_and_oracle):
        lte, subspace, _ = lte_and_oracle
        session = lte.start_session(variant="meta", subspaces=[subspace])
        with pytest.raises(RuntimeError):
            session.most_uncertain(subspace, np.zeros((3, 2)))


class TestNormalization:
    def test_state_data_is_unit_cube(self, lte_and_oracle):
        lte, subspace, _ = lte_and_oracle
        state = lte.states[subspace]
        assert state.data.min() >= 0.0 and state.data.max() <= 1.0

    def test_scaler_round_trip(self, lte_and_oracle):
        lte, subspace, _ = lte_and_oracle
        state = lte.states[subspace]
        raw = subspace.project(lte.table.data)[:20]
        assert np.allclose(state.to_raw(state.to_scaled(raw)), raw)

    def test_initial_tuples_are_raw_coordinates(self, lte_and_oracle):
        lte, subspace, _ = lte_and_oracle
        session = lte.start_session(variant="meta", subspaces=[subspace])
        tuples = session.initial_tuples()[subspace]
        raw = subspace.project(lte.table.data)
        lo, hi = raw.min(axis=0), raw.max(axis=0)
        assert (tuples >= lo - 1e-9).all() and (tuples <= hi + 1e-9).all()
        # Raw SDSS coordinates are far outside [0, 1] — ensure we did not
        # hand the user normalized points.
        assert tuples.max() > 1.5

    def test_encode_raw_equals_encode_scaled(self, lte_and_oracle):
        lte, subspace, _ = lte_and_oracle
        state = lte.states[subspace]
        raw = subspace.project(lte.table.data)[:10]
        assert np.allclose(state.encode(raw),
                           state.encode_scaled(state.to_scaled(raw)))
