"""Tests for the memory-augmented optimization structures (Section VI-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory import MetaMemories, softmax_cosine_attention


def make_memories(m=3, ku=8, theta=12, ne=4, seed=0):
    return MetaMemories(m=m, ku=ku, theta_r_size=theta, embed_size=ne,
                        seed=seed)


class TestAttention:
    def test_is_probability_simplex(self):
        mem = make_memories()
        a = mem.attention(np.random.default_rng(0).normal(size=8))
        assert a.shape == (3,)
        assert np.isclose(a.sum(), 1.0)
        assert (a >= 0).all()

    def test_aligned_pattern_gets_most_attention(self):
        mem = make_memories()
        pattern = mem.M_vR[1]
        a = mem.attention(pattern * 10)
        assert a.argmax() == 1

    def test_softmax_cosine_standalone(self):
        matrix = np.eye(3)
        a = softmax_cosine_attention(np.array([1.0, 0, 0]), matrix)
        assert a.argmax() == 0


class TestRetrieval:
    def test_omega_shape(self):
        mem = make_memories()
        a = mem.attention(np.ones(8))
        assert mem.omega_r(a).shape == (12,)

    def test_conversion_shape(self):
        mem = make_memories()
        a = mem.attention(np.ones(8))
        assert mem.conversion(a).shape == (4, 12)

    def test_conversion_initialized_near_averaging(self):
        mem = make_memories()
        a = np.array([1.0, 0.0, 0.0])
        conv = mem.conversion(a)
        base = np.hstack([np.eye(4)] * 3) / 3.0
        assert np.allclose(conv, base, atol=0.1)

    def test_retrieval_is_attention_weighted(self):
        mem = make_memories()
        one_hot = np.array([0.0, 1.0, 0.0])
        assert np.allclose(mem.omega_r(one_hot), mem.M_R[1])
        assert np.allclose(mem.conversion(one_hot), mem.M_CP[1])


class TestUpdates:
    def test_feature_pattern_ema(self):
        mem = make_memories()
        v = np.ones(8)
        a = np.array([0.5, 0.3, 0.2])
        before = mem.M_vR.copy()
        mem.update_feature_patterns(a, v, eta=0.1)
        expected = 0.1 * np.outer(a, v) + 0.9 * before
        assert np.allclose(mem.M_vR, expected)

    def test_parameter_memory_ema(self):
        mem = make_memories()
        grad = np.arange(12, dtype=float)
        a = np.array([1.0, 0.0, 0.0])
        before = mem.M_R.copy()
        mem.update_parameter_memory(a, grad, beta=0.2)
        expected = 0.2 * np.outer(a, grad) + 0.8 * before
        assert np.allclose(mem.M_R, expected)

    def test_conversion_memory_ema(self):
        mem = make_memories()
        local = np.random.default_rng(1).normal(size=(4, 12))
        a = np.array([0.2, 0.3, 0.5])
        before = mem.M_CP.copy()
        mem.update_conversion_memory(a, local, gamma=0.4)
        expected = 0.4 * a[:, None, None] * local[None] + 0.6 * before
        assert np.allclose(mem.M_CP, expected)

    def test_rate_validation(self):
        mem = make_memories()
        with pytest.raises(ValueError):
            mem.update_feature_patterns(np.ones(3) / 3, np.ones(8), eta=1.5)
        with pytest.raises(ValueError):
            mem.update_parameter_memory(np.ones(3) / 3, np.ones(12), beta=-1)

    def test_shape_validation(self):
        mem = make_memories()
        with pytest.raises(ValueError):
            mem.update_parameter_memory(np.ones(3) / 3, np.ones(5), beta=0.1)
        with pytest.raises(ValueError):
            mem.update_conversion_memory(np.ones(3) / 3, np.zeros((2, 2)),
                                         gamma=0.1)


class TestStateDict:
    def test_round_trip(self):
        mem = make_memories(seed=1)
        other = make_memories(seed=2)
        other.load_state_dict(mem.state_dict())
        assert np.allclose(mem.M_vR, other.M_vR)
        assert np.allclose(mem.M_R, other.M_R)
        assert np.allclose(mem.M_CP, other.M_CP)

    def test_state_dict_detached(self):
        mem = make_memories()
        state = mem.state_dict()
        state["M_vR"][:] = 0
        assert not np.allclose(mem.M_vR, 0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        MetaMemories(m=0, ku=4, theta_r_size=4, embed_size=2)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 5), st.integers(0, 200))
def test_property_attention_always_simplex(m, seed):
    rng = np.random.default_rng(seed)
    mem = MetaMemories(m=m, ku=6, theta_r_size=4, embed_size=2, seed=seed)
    a = mem.attention(rng.normal(size=6))
    assert np.isclose(a.sum(), 1.0)
    assert (a >= 0).all() and (a <= 1).all()
