"""Span tracer tests: nesting, sinks, and the disabled fast path."""

import pytest

from repro import obs

pytestmark = pytest.mark.obs


class TestSpans:
    def test_events_carry_timing_and_attrs(self):
        with obs.capture() as events:
            with obs.span("unit.work", items=3):
                pass
        assert len(events) == 1
        event = events[0]
        assert event["type"] == "span"
        assert event["name"] == "unit.work"
        assert event["items"] == 3
        assert event["seconds"] >= 0.0
        assert event["parent"] is None and event["depth"] == 0

    def test_nesting_records_parent_and_depth(self):
        with obs.capture() as events:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("sibling"):
                    pass
        by_name = {e["name"]: e for e in events}
        # Children close (and emit) before the parent.
        assert [e["name"] for e in events] == ["inner", "sibling", "outer"]
        outer = by_name["outer"]
        assert by_name["inner"]["parent"] == outer["span"]
        assert by_name["sibling"]["parent"] == outer["span"]
        assert by_name["inner"]["depth"] == 1
        assert outer["depth"] == 0

    def test_annotate_adds_attrs_mid_span(self):
        with obs.capture() as events:
            with obs.span("scan.stage") as scope:
                scope.annotate(chunks=7)
        assert events[0]["chunks"] == 7

    def test_exception_is_recorded_and_propagates(self):
        with obs.capture() as events:
            with pytest.raises(RuntimeError, match="boom"):
                with obs.span("will.fail"):
                    raise RuntimeError("boom")
        assert events[0]["error"] == "RuntimeError"

    def test_capture_restores_previous_sink(self):
        outer_events = []
        previous = obs.set_sink(outer_events.append)
        try:
            with obs.capture() as inner_events:
                with obs.span("inner.only"):
                    pass
            with obs.span("outer.only"):
                pass
        finally:
            obs.set_sink(previous)
        assert [e["name"] for e in inner_events] == ["inner.only"]
        assert [e["name"] for e in outer_events] == ["outer.only"]


class TestJsonlSink:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with obs.JsonlSink(path) as sink:
            previous = obs.set_sink(sink)
            try:
                with obs.span("stage.a", rows=10):
                    with obs.span("stage.b"):
                        pass
            finally:
                obs.set_sink(previous)
        events = obs.read_jsonl(path)
        assert [e["name"] for e in events] == ["stage.b", "stage.a"]
        assert events[1]["rows"] == 10
        assert all(e["seconds"] >= 0.0 for e in events)

    def test_close_is_idempotent_and_drops_late_events(self, tmp_path):
        sink = obs.JsonlSink(tmp_path / "spans.jsonl")
        sink({"type": "span", "name": "a", "seconds": 0.0})
        sink.close()
        sink.close()
        sink({"type": "span", "name": "late", "seconds": 0.0})   # no-op
        assert [e["name"] for e in obs.read_jsonl(sink.path)] == ["a"]


class TestDisabledFastPath:
    def test_no_sink_returns_shared_noop(self):
        assert obs.get_sink() is None   # conftest removed any sink
        assert obs.span("x") is obs.span("y")

    def test_disabled_with_sink_emits_nothing(self):
        with obs.capture() as events:
            with obs.enabled_scope(False):
                # Same shared no-op object every call: no span
                # allocation, no clock reads, nothing emitted.
                scope = obs.span("x", attr=1)
                assert scope is obs.span("y")
                with scope:
                    scope.annotate(more=2)
        assert events == []

    def test_reenabling_restores_emission(self):
        with obs.capture() as events:
            with obs.enabled_scope(False):
                with obs.span("off"):
                    pass
            with obs.span("on"):
                pass
        assert [e["name"] for e in events] == ["on"]
