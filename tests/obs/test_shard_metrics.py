"""Cross-process telemetry: per-worker snapshots merged at the gateway.

The acceptance criterion lives here: ``gateway.metrics()`` on a
2-worker pool returns each worker's registry snapshot (shipped over
pipe RPC) plus one deterministic element-wise merge of the fleet.
"""

import numpy as np
import pytest

from repro import obs
from repro.shard import ShardGateway, WorkerCrashed

pytestmark = [pytest.mark.obs, pytest.mark.shard]

FLUSH = "serve.manager.flush.seconds"


def _feed(gateway, oracle, session_id):
    for subspace, tuples in gateway.initial_tuples(session_id).items():
        gateway.submit_labels(session_id, subspace,
                              oracle.label_subspace(subspace, tuples))


def _serve_fleet(gateway, oracle, obs_subspaces, n_sessions=4):
    sids = [gateway.open_session(subspaces=obs_subspaces, seed=i)
            for i in range(n_sessions)]
    for sid in sids:
        _feed(gateway, oracle, sid)
    gateway.flush_all()
    return sids


class TestFleetMetrics:
    def test_two_worker_merge(self, obs_lte, obs_subspaces, make_oracle,
                              eval_rows):
        with ShardGateway(obs_lte, n_workers=2) as gateway:
            sids = _serve_fleet(gateway, make_oracle(67), obs_subspaces)
            gateway.predict_many(sids, eval_rows)
            fleet = gateway.metrics()
        assert sorted(fleet["workers"]) == [0, 1]
        for index in (0, 1):
            snap = fleet["workers"][index]
            assert snap[FLUSH]["kind"] == "histogram"
            assert snap[FLUSH]["count"] >= 1
            assert snap["serve.manager.sessions.opened"]["value"] == 2
        # The merged histogram is the element-wise sum of the workers'.
        merged = fleet["merged"][FLUSH]
        per_worker = [fleet["workers"][i][FLUSH] for i in (0, 1)]
        assert merged["count"] == sum(s["count"] for s in per_worker)
        for i in range(len(merged["counts"])):
            assert merged["counts"][i] == sum(s["counts"][i]
                                              for s in per_worker)
        assert fleet["merged"]["serve.manager.sessions.opened"]["value"] \
            == 4

    def test_merge_is_reply_order_independent(self, obs_lte, obs_subspaces,
                                              make_oracle):
        with ShardGateway(obs_lte, n_workers=2) as gateway:
            _serve_fleet(gateway, make_oracle(71), obs_subspaces)
            fleet = gateway.metrics()
        snaps = [fleet["workers"][0], fleet["workers"][1],
                 fleet["gateway"]]
        assert obs.merge_snapshots(snaps) == fleet["merged"]
        # Reversed merge order: identical integer state (histogram
        # ``sum`` floats may differ in the last ulp, so compare the
        # deterministic fields).
        reversed_merge = obs.merge_snapshots(list(reversed(snaps)))
        assert sorted(reversed_merge) == sorted(fleet["merged"])
        for name, entry in fleet["merged"].items():
            other = dict(reversed_merge[name])
            entry = dict(entry)
            if entry["kind"] == "histogram":
                assert entry.pop("sum") == pytest.approx(other.pop("sum"))
            assert entry == other, name

    def test_gateway_side_rpc_metrics(self, obs_lte, obs_subspaces,
                                      make_oracle):
        with ShardGateway(obs_lte, n_workers=2) as gateway:
            _serve_fleet(gateway, make_oracle(73), obs_subspaces)
            snap = gateway.metrics()["gateway"]
            assert snap["shard.gateway.workers.alive"]["value"] == 2
            assert snap["shard.gateway.rpc.calls"]["value"] >= 1
            rpc = snap["shard.gateway.rpc.seconds"]
            assert rpc["count"] == snap["shard.gateway.rpc.calls"]["value"]
            assert rpc["min"] > 0.0

    def test_stats_carries_per_worker_rpc_view(self, obs_lte,
                                               obs_subspaces, make_oracle):
        with ShardGateway(obs_lte, n_workers=2) as gateway:
            _serve_fleet(gateway, make_oracle(79), obs_subspaces)
            stats = gateway.stats()
        assert [w["worker"] for w in stats["workers"]] == [0, 1]
        for entry in stats["workers"]:
            assert entry["alive"] is True
            assert entry["queue_depth"] == 0          # drained
            # The stats fan-out itself is the last finished RPC.
            assert entry["last_rpc_method"] == "stats"
            assert entry["last_rpc_seconds"] > 0.0


class TestDeadWorkers:
    def test_tombstones_not_silent_omission(self, obs_lte, obs_subspaces,
                                            make_oracle):
        with ShardGateway(obs_lte, n_workers=2) as gateway:
            sids = [gateway.open_session(subspaces=obs_subspaces, seed=i)
                    for i in range(4)]
            lost = sum(1 for s in sids if gateway._sessions[s] == 0)
            oracle = make_oracle(83)
            for sid in sids:
                _feed(gateway, oracle, sid)
            gateway._call(gateway._workers[0], "_debug",
                          {"crash_on_flush": True})
            with pytest.raises(WorkerCrashed):
                gateway.flush_all()

            stats = gateway.stats()
            dead = stats["workers"][0]
            assert dead["alive"] is False
            assert dead["model"] is None
            assert dead["sessions_lost"] == lost
            assert "queue_depth" in dead and "last_rpc_seconds" in dead
            assert stats["workers"][1]["alive"] is True
            assert stats["alive_workers"] == 1

            fleet = gateway.metrics()
            assert fleet["workers"][0] == {"dead": True,
                                           "sessions_lost": lost}
            assert fleet["workers"][1][FLUSH]["count"] >= 1
            # The tombstone contributes nothing to the merge.
            assert fleet["merged"][FLUSH]["count"] == \
                fleet["workers"][1][FLUSH]["count"]
            gateway_snap = fleet["gateway"]
            assert gateway_snap["shard.gateway.workers.alive"]["value"] == 1
            assert gateway_snap["shard.gateway.workers.crashed"]["value"] \
                == 1


class TestShardedParityWithObs:
    def test_gateway_predictions_unchanged_by_obs(self, obs_lte,
                                                  obs_subspaces,
                                                  make_oracle, eval_rows):
        """Shard parity with telemetry live: predictions through an
        instrumented 2-worker gateway match an instrumented-but-disabled
        run bit for bit."""
        oracle = make_oracle(89)
        with ShardGateway(obs_lte, n_workers=2) as gateway:
            sids = _serve_fleet(gateway, oracle, obs_subspaces,
                                n_sessions=2)
            on = gateway.predict_many(sids, eval_rows)
            assert gateway.metrics()["merged"]       # telemetry was live
        with obs.enabled_scope(False):
            with ShardGateway(obs_lte, n_workers=2) as gateway:
                sids_off = _serve_fleet(gateway, oracle, obs_subspaces,
                                        n_sessions=2)
                off = gateway.predict_many(sids_off, eval_rows)
        for sid, ref_sid in zip(sorted(on), sorted(off)):
            assert np.array_equal(on[sid], off[ref_sid])
