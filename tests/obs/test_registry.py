"""Registry unit tests: primitives, merge determinism, exporters, CLI."""

import json
import random

import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main

pytestmark = pytest.mark.obs


def _filled_registry(seed, n_obs=200):
    rng = random.Random(seed)
    registry = obs.MetricsRegistry(enabled=True)
    counter = registry.counter("serve.cache.prediction.hits")
    hist = registry.histogram("serve.manager.flush.seconds")
    gauge = registry.gauge("serve.manager.queue.depth")
    for _ in range(n_obs):
        counter.inc(rng.randrange(3))
        hist.observe(rng.uniform(1e-6, 10.0))
    gauge.set(rng.randrange(100))
    return registry


class TestPrimitives:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = obs.MetricsRegistry(enabled=True)
        registry.counter("a.b.c").inc(5)
        registry.gauge("a.b.depth").set(3)
        hist = registry.histogram("a.b.seconds")
        for value in (0.001, 0.02, 0.5):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["a.b.c"] == {"kind": "counter", "value": 5}
        assert snap["a.b.depth"]["value"] == 3
        assert snap["a.b.seconds"]["count"] == 3
        assert snap["a.b.seconds"]["min"] == pytest.approx(0.001)
        assert snap["a.b.seconds"]["max"] == pytest.approx(0.5)
        restored = obs.MetricsRegistry(enabled=True)
        restored.load(snap)
        assert restored.snapshot() == snap

    def test_get_or_create_returns_same_object(self):
        registry = obs.MetricsRegistry(enabled=True)
        assert registry.counter("x.y.z") is registry.counter("x.y.z")

    def test_kind_conflict_rejected(self):
        registry = obs.MetricsRegistry(enabled=True)
        registry.counter("x.y.z")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x.y.z")

    def test_name_scheme_enforced(self):
        registry = obs.MetricsRegistry(enabled=True)
        for bad in ("", "Upper.case", "has space", ".leading", "trailing.",
                    "double..dot"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_histogram_percentile_is_bucket_bound(self):
        hist = obs.Histogram()
        for value in (0.001,) * 99 + (5.0,):
            hist.observe(value)
        p50 = hist.percentile(0.50)
        assert p50 in obs.BUCKET_BOUNDS and p50 >= 0.001
        assert hist.percentile(0.999) >= 5.0 or \
            hist.percentile(0.999) in obs.BUCKET_BOUNDS

    def test_counter_set_supports_restore(self):
        counter = obs.Counter()
        counter.inc(7)
        counter.set(3)
        assert counter.value == 3


def _assert_same_merge(left, right):
    """Merged snapshots must agree exactly on every integer field
    (bucket counts, counter values, min/max); histogram ``sum`` is a
    float accumulator kept for mean estimation only, so it may differ
    in the last ulp across merge orders."""
    assert sorted(left) == sorted(right)
    for name, entry in left.items():
        other = dict(right[name])
        entry = dict(entry)
        if entry["kind"] == "histogram":
            assert entry.pop("sum") == pytest.approx(other.pop("sum"))
        assert entry == other, name


class TestMergeDeterminism:
    def test_merge_is_order_independent(self):
        snaps = [_filled_registry(seed).snapshot() for seed in range(6)]
        forward = obs.merge_snapshots(snaps)
        _assert_same_merge(obs.merge_snapshots(list(reversed(snaps))),
                           forward)
        shuffled = list(snaps)
        for round_seed in range(5):
            random.Random(round_seed).shuffle(shuffled)
            _assert_same_merge(obs.merge_snapshots(shuffled), forward)

    def test_merge_equals_single_stream(self):
        """Splitting one observation stream across registries and
        merging yields the same histogram as observing it in one."""
        rng = random.Random(7)
        values = [rng.uniform(1e-6, 100.0) for _ in range(500)]
        whole = obs.MetricsRegistry(enabled=True)
        for value in values:
            whole.histogram("a.b.seconds").observe(value)
        parts = [obs.MetricsRegistry(enabled=True) for _ in range(4)]
        for i, value in enumerate(values):
            parts[i % 4].histogram("a.b.seconds").observe(value)
        merged = obs.merge_snapshots([p.snapshot() for p in parts])
        expected = whole.snapshot()["a.b.seconds"]
        got = merged["a.b.seconds"]
        assert got["counts"] == expected["counts"]
        assert got["count"] == expected["count"]
        assert got["min"] == expected["min"]
        assert got["max"] == expected["max"]

    def test_merged_percentiles_deterministic(self):
        snaps = [_filled_registry(seed).snapshot() for seed in range(4)]
        merged_a = obs.merge_snapshots(snaps)
        merged_b = obs.merge_snapshots(snaps[2:] + snaps[:2])
        hist_a, hist_b = obs.Histogram(), obs.Histogram()
        hist_a.merge(merged_a["serve.manager.flush.seconds"])
        hist_b.merge(merged_b["serve.manager.flush.seconds"])
        for q in (0.5, 0.9, 0.99):
            assert hist_a.percentile(q) == hist_b.percentile(q)

    def test_bucket_bound_mismatch_rejected(self):
        hist = obs.Histogram()
        snap = obs.Histogram().snapshot()
        snap["counts"] = snap["counts"][:-3]
        with pytest.raises(ValueError, match="bucket"):
            hist.merge(snap)


class TestDisabledFastPath:
    def test_disabled_registry_hands_out_shared_null(self):
        with obs.enabled_scope(False):
            registry = obs.MetricsRegistry()
            assert registry.counter("a.b.c") is registry.histogram("d.e.f")
            registry.counter("a.b.c").inc(10)
            registry.histogram("d.e.f").observe(1.0)
            assert registry.snapshot() == {}
            assert registry.merge({"a.b.c": {"kind": "counter",
                                             "value": 3}}).snapshot() == {}

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        obs.configure(None)   # force re-resolution
        try:
            assert not obs.enabled()
            monkeypatch.setenv("REPRO_OBS", "on")
            obs.configure(None)
            assert obs.enabled()
        finally:
            obs.configure(True)


class TestExporters:
    def test_prometheus_text(self):
        snap = _filled_registry(3).snapshot()
        text = obs.to_prometheus(snap)
        assert "# TYPE repro_serve_cache_prediction_hits counter" in text
        assert "# TYPE repro_serve_manager_flush_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_serve_manager_flush_seconds_count 200" in text
        # Cumulative bucket counts end at the total count.
        assert obs.to_prometheus(snap) == text   # deterministic render

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        records = [{"type": "span", "name": "a.b", "seconds": 0.5},
                   {"type": "span", "name": "a.b", "seconds": 0.25}]
        obs.write_jsonl(path, records)
        assert obs.read_jsonl(path) == records

    def test_summarize_tables(self):
        events = [{"type": "span", "name": "serve.flush", "seconds": s}
                  for s in (0.01, 0.02, 0.03)]
        snap = {"serve.cache.prediction.hits":
                {"kind": "counter", "value": 9},
                "serve.cache.prediction.misses":
                {"kind": "counter", "value": 1}}
        summary = obs.summarize_events(events, snap)
        assert summary["spans"][0]["name"] == "serve.flush"
        assert summary["spans"][0]["count"] == 3
        assert summary["ratios"] == [{"name": "serve.cache.prediction",
                                      "hits": 9, "misses": 1,
                                      "ratio": 0.9}]
        text = obs.format_summary(summary)
        assert "serve.flush" in text and "90.0%" in text

    def test_cli_summarize_and_prom(self, tmp_path, capsys):
        events_path = tmp_path / "capture.jsonl"
        obs.write_jsonl(events_path, [
            {"type": "span", "name": "stage.one", "seconds": 0.1},
            {"name": "serve.cache.prediction.hits", "kind": "counter",
             "value": 4},
            {"name": "serve.cache.prediction.misses", "kind": "counter",
             "value": 4},
        ])
        assert obs_main(["summarize", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "stage.one" in out and "50.0%" in out
        snap_path = tmp_path / "snap.jsonl"
        snap = _filled_registry(1).snapshot()
        obs.write_jsonl(snap_path, [dict(entry, name=name)
                                    for name, entry in snap.items()])
        assert obs_main(["prom", str(snap_path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_manager_flush_seconds histogram" in out

    def test_snapshot_is_json_safe(self):
        json.dumps(_filled_registry(5).snapshot())


class TestAggregate:
    def test_aggregate_merges_live_registries(self):
        a = obs.MetricsRegistry(enabled=True)
        b = obs.MetricsRegistry(enabled=True)
        a.counter("x.y.z").inc(2)
        b.counter("x.y.z").inc(3)
        obs.default_registry().counter("x.y.z").inc(1)
        merged = obs.aggregate()
        assert merged["x.y.z"]["value"] >= 6
