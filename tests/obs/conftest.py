"""Fixtures for the observability suite: a tiny trained LTE + obs reset.

Metrics enablement is forced ON for every test here (the suite asserts
telemetry content), and the process-default registry is dropped between
tests so cumulative counters never leak across cases.
"""

import pytest

from repro import obs
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.data import make_car


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    with obs.enabled_scope(True):
        obs.reset_default_registry()
        previous_sink = obs.set_sink(None)
        yield
        obs.set_sink(previous_sink)
        obs.reset_default_registry()


@pytest.fixture(scope="session")
def obs_lte():
    table = make_car(n_rows=1500, seed=41)
    lte = LTE(LTEConfig(budget=20, ku=25, kq=30, n_tasks=6,
                        meta=MetaHyperParams(epochs=1, local_steps=2,
                                             batch_size=3,
                                             pretrain_epochs=1),
                        basic_steps=15, online_steps=4))
    lte.fit_offline(table)
    return lte


@pytest.fixture(scope="session")
def obs_subspaces(obs_lte):
    return list(obs_lte.states)[:2]


@pytest.fixture(scope="session")
def make_oracle(obs_lte, obs_subspaces):
    """Factory: a distinct conjunctive ground-truth oracle per seed."""
    from repro.bench import subspace_region
    from repro.core.uis import UISMode
    from repro.explore import ConjunctiveOracle

    def factory(seed, subspaces=None):
        subspaces = subspaces or obs_subspaces
        return ConjunctiveOracle({
            s: subspace_region(obs_lte.states[s], UISMode(1, 10),
                               seed=seed + i)
            for i, s in enumerate(subspaces)})

    return factory


@pytest.fixture()
def eval_rows(obs_lte):
    return obs_lte.table.sample_rows(200, seed=5)
