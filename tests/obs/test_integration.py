"""End-to-end: a serving wave populates the registry — and the
instrumentation never changes a prediction bit (the no-interference
guarantee)."""

import numpy as np
import pytest

from repro import obs
from repro.serve import SessionManager

pytestmark = pytest.mark.obs


def _feed(manager, oracle, session_id):
    for subspace, tuples in manager.initial_tuples(session_id).items():
        manager.submit_labels(session_id, subspace,
                              oracle.label_subspace(subspace, tuples))


def _serve_wave(manager, oracle, obs_subspaces, eval_rows, n_sessions=3):
    sids = [manager.open_session(subspaces=obs_subspaces, seed=i)
            for i in range(n_sessions)]
    for sid in sids:
        _feed(manager, oracle, sid)
    manager.flush()
    return sids, manager.predict_many(sids, eval_rows)


class TestServingWaveMetrics:
    def test_wave_populates_latency_breakdown(self, obs_lte, obs_subspaces,
                                              make_oracle, eval_rows):
        manager = SessionManager(obs_lte)
        sids, _ = _serve_wave(manager, make_oracle(31), obs_subspaces,
                              eval_rows)
        snap = manager.metrics.snapshot()
        assert snap["serve.manager.sessions.opened"]["value"] == len(sids)
        assert snap["serve.manager.sessions.live"]["value"] == len(sids)
        assert snap["serve.manager.queue.depth"]["value"] == 0
        # One queue-wait sample per submitted label batch, and every
        # stage of the per-request breakdown saw the wave.
        n_batches = len(sids) * len(obs_subspaces)
        assert snap["serve.manager.queue.wait.seconds"]["count"] == n_batches
        for stage in ("flush", "adapt.build", "adapt.train",
                      "adapt.install"):
            name = "serve.manager.{}.seconds".format(stage)
            assert snap[name]["count"] >= 1, name
        for stage in ("encode", "forward", "refine"):
            name = "serve.manager.predict.{}.seconds".format(stage)
            assert snap[name]["count"] >= 1, name
        assert snap["serve.manager.adapt.batches"]["value"] == \
            manager.adapt_batches
        assert snap["serve.manager.encode_cache.misses"]["value"] >= 1

    def test_stats_shims_read_the_registry(self, obs_lte, obs_subspaces,
                                           make_oracle, eval_rows):
        manager = SessionManager(obs_lte)
        _serve_wave(manager, make_oracle(37), obs_subspaces, eval_rows)
        metrics = manager.metrics
        stats = manager.stats
        assert stats["adapt_batches"] == \
            metrics.value("serve.manager.adapt.batches")
        assert stats["adapted_total"] == \
            metrics.value("serve.manager.adapt.total")
        assert stats["cache"]["hits"] == \
            metrics.value("serve.cache.prediction.hits")
        assert stats["cache"]["misses"] == \
            metrics.value("serve.cache.prediction.misses")
        assert stats["cache"]["entries"] == \
            metrics.value("serve.cache.prediction.entries")

    def test_prediction_cache_hits_counted(self, obs_lte, obs_subspaces,
                                           make_oracle, eval_rows):
        manager = SessionManager(obs_lte)
        sids, first = _serve_wave(manager, make_oracle(41), obs_subspaces,
                                  eval_rows)
        hits_before = manager.metrics.value("serve.cache.prediction.hits")
        again = manager.predict_many(sids, eval_rows)
        hits_after = manager.metrics.value("serve.cache.prediction.hits")
        # One cached entry per (session, subspace) pair.
        assert hits_after == hits_before + len(sids) * len(obs_subspaces)
        for sid in sids:
            assert np.array_equal(first[sid], again[sid])

    def test_spans_cover_adapt_and_predict(self, obs_lte, obs_subspaces,
                                           make_oracle, eval_rows):
        manager = SessionManager(obs_lte)
        with obs.capture() as events:
            _serve_wave(manager, make_oracle(43), obs_subspaces, eval_rows)
        names = [e["name"] for e in events]
        assert "serve.manager.adapt" in names
        assert "serve.manager.predict_many" in names
        adapt = next(e for e in events
                     if e["name"] == "serve.manager.adapt")
        assert adapt["requests"] >= 1
        assert adapt["seconds"] > 0.0


class TestSnapshotRestore:
    def test_counters_survive_snapshot_roundtrip(self, obs_lte,
                                                 obs_subspaces,
                                                 make_oracle, eval_rows):
        manager = SessionManager(obs_lte)
        sids, reference = _serve_wave(manager, make_oracle(47),
                                      obs_subspaces, eval_rows)
        snapshot = manager.snapshot()
        assert snapshot["metrics"] == manager.metrics.snapshot()
        restored = SessionManager.restore(obs_lte, snapshot)
        # The full telemetry state (counters AND histogram buckets)
        # continues where the snapshot left off.
        assert restored.metrics.snapshot() == snapshot["metrics"]
        assert restored.adapt_batches == manager.adapt_batches
        assert restored.stats["cache"]["hits"] == \
            manager.stats["cache"]["hits"]
        for sid in sids:
            assert np.array_equal(restored.predict(sid, eval_rows),
                                  reference[sid])

    def test_pre_metrics_snapshots_still_restore(self, obs_lte,
                                                 obs_subspaces,
                                                 make_oracle, eval_rows):
        manager = SessionManager(obs_lte)
        _, reference = _serve_wave(manager, make_oracle(53), obs_subspaces,
                                   eval_rows, n_sessions=1)
        snapshot = manager.snapshot()
        del snapshot["metrics"]   # a checkpoint from before repro.obs
        restored = SessionManager.restore(obs_lte, snapshot)
        # Scalar counters come back through the legacy fields even
        # without the metrics payload.
        assert restored.adapt_batches == manager.adapt_batches
        sid = next(iter(reference))
        assert np.array_equal(restored.predict(sid, eval_rows),
                              reference[sid])


class TestNoInterference:
    def test_predictions_bit_identical_with_obs_off(self, obs_lte,
                                                    obs_subspaces,
                                                    make_oracle,
                                                    eval_rows):
        """The acceptance guarantee: enabling observability changes no
        prediction by a single bit."""
        oracle = make_oracle(59)
        manager_on = SessionManager(obs_lte)
        with obs.capture() as events:
            _, on = _serve_wave(manager_on, oracle, obs_subspaces,
                                eval_rows)
        assert events                       # telemetry was really live
        assert manager_on.metrics.snapshot()
        with obs.enabled_scope(False):
            manager_off = SessionManager(obs_lte)
            with obs.capture() as off_events:
                _, off = _serve_wave(manager_off, oracle, obs_subspaces,
                                     eval_rows)
        assert off_events == []             # off path emits nothing
        assert manager_off.metrics.snapshot() == {}
        assert sorted(on) == sorted(off)
        for sid in on:
            assert np.array_equal(on[sid], off[sid])

    def test_off_manager_stats_shim_still_works(self, obs_lte,
                                                obs_subspaces,
                                                make_oracle, eval_rows):
        """With REPRO_OBS=off the shims read null metrics: structurally
        intact (queue depth and session counts stay live — they come
        from real state, not counters)."""
        with obs.enabled_scope(False):
            manager = SessionManager(obs_lte)
            sids, _ = _serve_wave(manager, make_oracle(61), obs_subspaces,
                                  eval_rows, n_sessions=2)
            stats = manager.stats
            assert stats["sessions"] == len(sids)
            assert stats["queued"] == 0
            assert stats["adapt_batches"] == 0   # null counter
