"""Shared fixtures: small datasets and pre-built LTE artifacts.

Session-scoped so the expensive pieces (clustering, preprocessing,
meta-training) are built once per pytest run.
"""

import numpy as np
import pytest

from repro.core.meta_task import MetaTaskGenerator
from repro.core.preprocessing import TabularPreprocessor
from repro.core.uis import UISMode
from repro.data import make_car, make_sdss


@pytest.fixture(scope="session")
def sdss_small():
    return make_sdss(n_rows=4000, seed=11)


@pytest.fixture(scope="session")
def car_small():
    return make_car(n_rows=4000, seed=13)


@pytest.fixture(scope="session")
def subspace_data(sdss_small):
    """2-D (ra, dec) projection used by most core tests."""
    return sdss_small.data[:, [2, 3]]


@pytest.fixture(scope="session")
def subspace_attrs(sdss_small):
    return [sdss_small.attributes[2], sdss_small.attributes[3]]


@pytest.fixture(scope="session")
def task_generator(subspace_data):
    return MetaTaskGenerator(subspace_data, ku=40, ks=15, kq=60,
                             mode=UISMode(alpha=2, psi=8), delta=5, seed=3)


@pytest.fixture(scope="session")
def preprocessor(subspace_data, subspace_attrs, task_generator):
    prep = TabularPreprocessor(subspace_attrs, n_components=4, seed=3)
    prep.fit(subspace_data)
    prep.attach_centers(task_generator.summary.centers_u)
    return prep


@pytest.fixture(scope="session")
def meta_tasks(task_generator):
    return task_generator.generate(12)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
