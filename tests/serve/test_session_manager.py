"""SessionManager behaviour: queueing, isolation, caching, determinism."""

import numpy as np
import pytest

from repro.serve import SessionManager

pytestmark = pytest.mark.smoke


@pytest.fixture()
def manager(serve_lte):
    return SessionManager(serve_lte)


class TestLifecycle:
    def test_requires_fitted_lte(self):
        with pytest.raises(TypeError):
            SessionManager(object())

    def test_open_close(self, manager, serve_subspaces):
        sid = manager.open_session(subspaces=serve_subspaces)
        assert manager.n_sessions == 1
        manager.close_session(sid)
        assert manager.n_sessions == 0
        with pytest.raises(KeyError):
            manager.session(sid)

    def test_unknown_session_rejected(self, manager):
        with pytest.raises(KeyError):
            manager.submit_labels(999, None, [])

    def test_close_drops_queued_work(self, manager, serve_subspaces,
                                     make_oracle):
        oracle = make_oracle(1)
        sid = manager.open_session(subspaces=serve_subspaces)
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(sid, subspace,
                                  oracle.label_subspace(subspace, tuples))
        assert len(manager.pending(sid)) == len(serve_subspaces)
        manager.close_session(sid)
        assert manager.pending() == []
        assert manager.flush() == 0


class TestQueueing:
    def test_submit_validates_immediately(self, manager, serve_subspaces):
        sid = manager.open_session(subspaces=serve_subspaces)
        with pytest.raises(ValueError):
            manager.submit_labels(sid, serve_subspaces[0], np.ones(3))
        assert manager.pending(sid) == []

    def test_add_labels_requires_initial(self, manager, serve_subspaces):
        sid = manager.open_session(subspaces=[serve_subspaces[0]])
        with pytest.raises(RuntimeError):
            manager.add_labels(sid, serve_subspaces[0],
                               np.zeros((1, 2)), [1])

    def test_add_labels_validates_tuple_width(self, manager, serve_subspaces,
                                              make_oracle, serve_lte):
        """Mis-shaped extra tuples are rejected at enqueue and never
        poison the subsession's accumulated label state."""
        oracle = make_oracle(7)
        subspace = serve_subspaces[0]
        state = serve_lte.states[subspace]
        sid = manager.open_session(subspaces=[subspace])
        tuples = manager.initial_tuples(sid)[subspace]
        manager.submit_labels(sid, subspace,
                              oracle.label_subspace(subspace, tuples))
        manager.flush()
        with pytest.raises(ValueError):
            manager.add_labels(sid, subspace, np.zeros((2, 9)), [0, 1])
        # A later valid round must still work (no poisoned extra_x).
        extra = state.to_raw(state.data[5:7])
        manager.add_labels(sid, subspace, extra,
                           oracle.label_subspace(subspace, extra))
        assert manager.flush() == 1

    def test_flush_isolates_failing_item(self, manager, serve_lte,
                                         serve_subspaces, make_oracle):
        """One bad queued item must not discard other sessions' work."""
        oracle = make_oracle(8)
        subspace = serve_subspaces[0]
        sid_bad = manager.open_session(subspaces=[subspace])
        sid_good = manager.open_session(subspaces=[subspace])
        tuples = manager.initial_tuples(sid_bad)[subspace]
        labels = oracle.label_subspace(subspace, tuples)
        manager.submit_labels(sid_bad, subspace, labels)
        manager.submit_labels(sid_good, subspace, labels)
        # Make the bad session's request-building fail at flush time
        # (simulating state that passed enqueue validation but cannot
        # build), without touching the shared subspace state.
        def boom(labels):
            raise RuntimeError("corrupt session")
        manager.session(sid_bad)._subsessions[subspace] \
            .build_initial_request = boom
        with pytest.raises(RuntimeError, match="corrupt session"):
            manager.flush()
        # The good session still adapted despite the bad item.
        assert manager.session(sid_good)._subsessions[subspace].adapted \
            is not None
        assert manager.session(sid_bad)._subsessions[subspace].adapted \
            is None

    def test_training_failure_requeues_and_retries(self, manager, serve_lte,
                                                   serve_subspaces,
                                                   make_oracle,
                                                   monkeypatch):
        """A mid-training crash installs nothing; the queue survives and
        a retry lands exactly where an undisturbed run would."""
        import repro.serve.manager as manager_module

        oracle = make_oracle(9)
        subspace = serve_subspaces[0]
        state = serve_lte.states[subspace]
        sid = manager.open_session(subspaces=[subspace])
        manager.submit_labels(
            sid, subspace,
            oracle.label_subspace(subspace,
                                  manager.initial_tuples(sid)[subspace]))
        extra = state.to_raw(state.data[5:7])
        manager.add_labels(sid, subspace, extra,
                           oracle.label_subspace(subspace, extra))

        real = manager_module.run_adapt_requests
        calls = {"n": 0}

        def flaky(requests):
            calls["n"] += 1
            if calls["n"] == 1:
                raise MemoryError("simulated")
            return real(requests)

        monkeypatch.setattr(manager_module, "run_adapt_requests", flaky)
        with pytest.raises(MemoryError):
            manager.flush()
        assert len(manager.pending(sid)) == 2   # both items back in queue
        subsession = manager.session(sid)._subsessions[subspace]
        assert subsession.adapted is None and subsession.extra_x is None

        assert manager.flush() == 2             # retry succeeds
        assert subsession.model_version == 2
        assert len(subsession.extra_x) == 2     # extras recorded exactly once

    def test_submission_is_deferred_until_flush(self, manager,
                                                serve_subspaces,
                                                make_oracle):
        oracle = make_oracle(2)
        sid = manager.open_session(subspaces=serve_subspaces)
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(sid, subspace,
                                  oracle.label_subspace(subspace, tuples))
        session = manager.session(sid)
        assert all(ss.adapted is None
                   for ss in session._subsessions.values())
        done = manager.flush()
        assert done == len(serve_subspaces)
        assert all(ss.adapted is not None
                   for ss in session._subsessions.values())

    def test_poll_flushes_and_reports(self, manager, serve_subspaces,
                                      make_oracle):
        oracle = make_oracle(3)
        sid = manager.open_session(subspaces=serve_subspaces)
        status = manager.poll(sid)
        assert status["ready"] == [] and status["pending"] == []
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(sid, subspace,
                                  oracle.label_subspace(subspace, tuples))
        peeked = manager.poll(sid, advance=False)
        assert sorted(peeked["pending"], key=str) == \
            sorted(serve_subspaces, key=str)
        assert peeked["ready"] == []
        status = manager.poll(sid)
        assert sorted(status["ready"], key=str) == \
            sorted(serve_subspaces, key=str)
        assert status["pending"] == []
        assert all(v == 1 for v in status["versions"].values())

    def test_initial_and_extra_in_one_flush(self, manager, serve_subspaces,
                                            make_oracle, serve_lte):
        """Wave scheduling: queued initial + extra rounds stay ordered."""
        oracle = make_oracle(4)
        subspace = serve_subspaces[0]
        state = serve_lte.states[subspace]
        sid = manager.open_session(subspaces=[subspace])
        tuples = manager.initial_tuples(sid)[subspace]
        manager.submit_labels(sid, subspace,
                              oracle.label_subspace(subspace, tuples))
        extra = state.to_raw(state.data[10:13])
        manager.add_labels(sid, subspace, extra,
                           oracle.label_subspace(subspace, extra))
        assert manager.flush() == 2
        subsession = manager.session(sid)._subsessions[subspace]
        assert subsession.model_version == 2
        assert len(subsession.extra_x) == 3


class TestIsolation:
    def test_interleaved_sessions_do_not_leak(self, manager, serve_lte,
                                              serve_subspaces, make_oracle,
                                              eval_rows):
        """Interleaved submissions across sessions with different oracles
        give each session exactly what a solo run would."""
        oracle_a, oracle_b = make_oracle(10), make_oracle(20)
        sid_a = manager.open_session(subspaces=serve_subspaces)
        sid_b = manager.open_session(subspaces=serve_subspaces)
        tuples_a = manager.initial_tuples(sid_a)
        tuples_b = manager.initial_tuples(sid_b)
        # Interleave: a's first subspace, b's first, a's second, b's second.
        for subspace in serve_subspaces:
            manager.submit_labels(
                sid_a, subspace,
                oracle_a.label_subspace(subspace, tuples_a[subspace]))
            manager.submit_labels(
                sid_b, subspace,
                oracle_b.label_subspace(subspace, tuples_b[subspace]))
        manager.flush()

        for oracle, sid in ((oracle_a, sid_a), (oracle_b, sid_b)):
            solo = serve_lte.start_session(subspaces=serve_subspaces)
            for subspace, tuples in solo.initial_tuples().items():
                solo.submit_labels(subspace,
                                   oracle.label_subspace(subspace, tuples))
            assert np.array_equal(manager.predict(sid, eval_rows),
                                  solo.predict(eval_rows))

    def test_per_session_label_state_is_private(self, manager,
                                                serve_subspaces,
                                                make_oracle):
        oracle = make_oracle(11)
        subspace = serve_subspaces[0]
        sid_a = manager.open_session(subspaces=[subspace])
        sid_b = manager.open_session(subspaces=[subspace])
        tuples = manager.initial_tuples(sid_a)[subspace]
        labels = oracle.label_subspace(subspace, tuples)
        manager.submit_labels(sid_a, subspace, labels)
        manager.flush()
        ss_a = manager.session(sid_a)._subsessions[subspace]
        ss_b = manager.session(sid_b)._subsessions[subspace]
        assert ss_a.labels is not None
        assert ss_b.labels is None and ss_b.adapted is None
        assert ss_b.model_version == 0


class TestPredictionCache:
    def test_repeat_predictions_hit_cache(self, manager, serve_subspaces,
                                          make_oracle, eval_rows):
        oracle = make_oracle(30)
        sid = manager.open_session(subspaces=serve_subspaces)
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(sid, subspace,
                                  oracle.label_subspace(subspace, tuples))
        first = manager.predict(sid, eval_rows)
        misses = manager.cache.misses
        second = manager.predict(sid, eval_rows)
        assert np.array_equal(first, second)
        assert manager.cache.misses == misses          # no new misses
        assert manager.cache.hits >= len(serve_subspaces)

    def test_cache_invalidates_on_new_labels(self, manager, serve_lte,
                                             serve_subspaces, make_oracle,
                                             eval_rows):
        oracle = make_oracle(31)
        subspace = serve_subspaces[0]
        state = serve_lte.states[subspace]
        sid = manager.open_session(subspaces=[subspace])
        tuples = manager.initial_tuples(sid)[subspace]
        manager.submit_labels(sid, subspace,
                              oracle.label_subspace(subspace, tuples))
        manager.predict(sid, eval_rows)
        version = manager.session(sid)._subsessions[subspace].model_version

        extra = state.to_raw(state.data[30:36])
        manager.add_labels(sid, subspace, extra,
                           oracle.label_subspace(subspace, extra))
        misses = manager.cache.misses
        refreshed = manager.predict(sid, eval_rows)
        # New model version -> the old entry is unreachable: a fresh miss.
        assert manager.cache.misses == misses + 1
        assert manager.session(sid)._subsessions[subspace].model_version \
            == version + 1
        assert refreshed.shape == (len(eval_rows),)

    def test_sessions_share_encode_but_not_predictions(self, manager,
                                                       serve_subspaces,
                                                       make_oracle,
                                                       eval_rows):
        oracle_a, oracle_b = make_oracle(32), make_oracle(42)
        subspace = serve_subspaces[0]
        sid_a = manager.open_session(subspaces=[subspace])
        sid_b = manager.open_session(subspaces=[subspace])
        for sid, oracle in ((sid_a, oracle_a), (sid_b, oracle_b)):
            tuples = manager.initial_tuples(sid)[subspace]
            manager.submit_labels(sid, subspace,
                                  oracle.label_subspace(subspace, tuples))
        results = manager.predict_many([sid_a, sid_b], eval_rows)
        assert set(results) == {sid_a, sid_b}
        # Distinct interests -> (almost surely) distinct predictions, and
        # each session's cache entry is keyed separately.
        assert manager.cache.stats["entries"] == 2


class TestDeterminism:
    def test_hundred_adapt_cycles_deterministic(self, serve_lte,
                                                serve_subspaces,
                                                make_oracle):
        """A session surviving 100 re-adapt cycles stays reproducible."""
        subspace = serve_subspaces[0]
        state = serve_lte.states[subspace]
        oracle = make_oracle(50)
        raw = state.to_raw(state.data)

        def run():
            manager = SessionManager(serve_lte)
            sid = manager.open_session(variant="meta", subspaces=[subspace])
            tuples = manager.initial_tuples(sid)[subspace]
            manager.submit_labels(sid, subspace,
                                  oracle.label_subspace(subspace, tuples))
            manager.flush()
            rng = np.random.default_rng(123)
            for _ in range(100):
                idx = rng.integers(0, len(raw), size=2)
                pts = raw[idx]
                manager.add_labels(sid, subspace, pts,
                                   oracle.label_subspace(subspace, pts))
                manager.flush()
            subsession = manager.session(sid)._subsessions[subspace]
            assert subsession.model_version == 101
            assert len(subsession.extra_x) == 200
            return manager.predict_subspace(sid, subspace, raw[:300])

        first, second = run(), run()
        assert np.array_equal(first, second)


class TestStats:
    def test_stats_counters(self, manager, serve_subspaces, make_oracle,
                            eval_rows):
        oracle = make_oracle(60)
        sid = manager.open_session(subspaces=serve_subspaces)
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(sid, subspace,
                                  oracle.label_subspace(subspace, tuples))
        stats = manager.stats
        assert stats["sessions"] == 1
        assert stats["queued"] == len(serve_subspaces)
        manager.flush()
        manager.predict(sid, eval_rows)
        stats = manager.stats
        assert stats["queued"] == 0
        assert stats["adapt_batches"] == 1
        assert stats["adapted_total"] == len(serve_subspaces)
        assert stats["cache"]["entries"] == len(serve_subspaces)

    def test_region_packs_reused_across_model_versions(
            self, manager, serve_subspaces, make_oracle, eval_rows):
        """Re-adaptation bumps model versions but never hull geometry,
        so the refine group's compiled pack is a cache hit on the next
        predict instead of a recompile."""
        oracle = make_oracle(62)
        sid = manager.open_session(variant="meta_star",
                                   subspaces=serve_subspaces)
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(sid, subspace,
                                  oracle.label_subspace(subspace, tuples))
        manager.flush()
        manager.predict(sid, eval_rows)
        misses = manager.region_pack_stats["misses"]
        assert misses > 0
        # An iterative round re-adapts every subspace (version bump).
        subspace = serve_subspaces[0]
        raw = manager.session(sid)._subsessions[subspace] \
            .state.to_raw(manager.session(sid)
                          ._subsessions[subspace].state.data[40:43])
        manager.add_labels(sid, subspace, raw,
                           oracle.label_subspace(subspace, raw))
        manager.flush()
        manager.predict(sid, eval_rows)
        stats = manager.region_pack_stats
        assert stats["misses"] == misses   # no recompilation
        assert stats["hits"] > 0

    def test_retrieve_returns_interesting_rows(self, manager,
                                               serve_subspaces,
                                               make_oracle):
        oracle = make_oracle(61)
        sid = manager.open_session(subspaces=serve_subspaces)
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(sid, subspace,
                                  oracle.label_subspace(subspace, tuples))
        rows = manager.retrieve(sid, limit=10)
        assert rows.ndim == 2 and len(rows) <= 10
        if len(rows):
            assert np.all(manager.predict(sid, rows) == 1)
