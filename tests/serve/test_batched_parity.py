"""Parity: batched serving must reproduce sequential adaptation exactly.

The serving layer's contract is that a session adapted through
``SessionManager`` (stacked tensors, fused Adam, shared geometry) is
indistinguishable from one driven through the sequential
``run_lte_exploration`` path — same adapted parameters, same predictions,
same F1 — for every variant.  These tests pin that contract with a fixed
seed.
"""

import numpy as np
import pytest

from repro.core import VARIANTS
from repro.explore import run_concurrent_explorations, run_lte_exploration
from repro.serve import SessionManager

pytestmark = pytest.mark.smoke


@pytest.mark.parametrize("variant", VARIANTS)
class TestVariantParity:
    def test_concurrent_sessions_match_sequential(
            self, serve_lte, serve_subspaces, make_oracle, eval_rows,
            variant):
        """K batched sessions each equal their sequential twin exactly."""
        oracles = [make_oracle(100 + 7 * k) for k in range(3)]
        sequential = [run_lte_exploration(serve_lte, o, eval_rows,
                                          variant=variant,
                                          subspaces=serve_subspaces)
                      for o in oracles]
        batched = run_concurrent_explorations(serve_lte, oracles, eval_rows,
                                              variant=variant,
                                              subspaces=serve_subspaces)
        assert len(batched) == len(sequential)
        for seq, bat in zip(sequential, batched):
            assert np.allclose(seq.f1, bat.f1)
            assert np.array_equal(seq.predictions, bat.predictions)
            assert seq.labels_used == bat.labels_used

    def test_adapted_parameters_match(self, serve_lte, serve_subspaces,
                                      make_oracle, variant):
        """The fused optimizer steps land on identical model parameters."""
        oracle = make_oracle(55)
        session = serve_lte.start_session(variant=variant,
                                          subspaces=serve_subspaces)
        for subspace, tuples in session.initial_tuples().items():
            session.submit_labels(subspace,
                                  oracle.label_subspace(subspace, tuples))

        # Two managed sessions in one flush forces the stacked code path.
        manager = SessionManager(serve_lte)
        sids = [manager.open_session(variant=variant,
                                     subspaces=serve_subspaces)
                for _ in range(2)]
        for sid in sids:
            for subspace, tuples in manager.initial_tuples(sid).items():
                manager.submit_labels(
                    sid, subspace, oracle.label_subspace(subspace, tuples))
        assert manager.flush() == 2 * len(serve_subspaces)

        for sid in sids:
            managed = manager.session(sid)
            for subspace in serve_subspaces:
                seq_ss = session._subsessions[subspace]
                bat_ss = managed._subsessions[subspace]
                assert np.allclose(seq_ss.adapted.model.flat_parameters(),
                                   bat_ss.adapted.model.flat_parameters(),
                                   atol=1e-12)
                if seq_ss.adapted.conversion is not None:
                    assert np.allclose(seq_ss.adapted.conversion.data,
                                       bat_ss.adapted.conversion.data,
                                       atol=1e-12)

    def test_subspace_predictions_match(self, serve_lte, serve_subspaces,
                                        make_oracle, variant):
        """Per-subspace (cached, batched) prediction equals sequential."""
        oracle = make_oracle(77)
        subspace = serve_subspaces[0]
        session = serve_lte.start_session(variant=variant,
                                          subspaces=[subspace])
        tuples = session.initial_tuples()[subspace]
        labels = oracle.label_subspace(subspace, tuples)
        session.submit_labels(subspace, labels)

        manager = SessionManager(serve_lte)
        sids = [manager.open_session(variant=variant, subspaces=[subspace])
                for _ in range(2)]
        for sid in sids:
            manager.submit_labels(sid, subspace, labels)

        points = serve_lte.states[subspace].to_raw(
            serve_lte.states[subspace].data[:200])
        expected = session.predict_subspace(subspace, points)
        for sid in sids:
            assert np.array_equal(
                manager.predict_subspace(sid, subspace, points), expected)


def test_iterative_readaptation_parity(serve_lte, serve_subspaces,
                                       make_oracle):
    """add_labels through the manager matches sequential add_labels."""
    oracle = make_oracle(31)
    subspace = serve_subspaces[0]
    state = serve_lte.states[subspace]
    session = serve_lte.start_session(variant="meta",
                                      subspaces=[subspace])
    labels = oracle.label_subspace(subspace,
                                   session.initial_tuples()[subspace])
    session.submit_labels(subspace, labels)

    manager = SessionManager(serve_lte)
    sid = manager.open_session(variant="meta", subspaces=[subspace])
    manager.submit_labels(sid, subspace, labels)

    extra = state.to_raw(state.data[50:55])
    extra_labels = oracle.label_subspace(subspace, extra)
    session.add_labels(subspace, extra, extra_labels)
    manager.add_labels(sid, subspace, extra, extra_labels)
    manager.flush()

    points = state.to_raw(state.data[:150])
    assert np.array_equal(manager.predict_subspace(sid, subspace, points),
                          session.predict_subspace(subspace, points))
