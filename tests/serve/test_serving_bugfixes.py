"""Regression tests for the serving-layer bugfix trio.

1. The encode cache (``SessionManager._encoded_rows``) was keyed by
   ``(subspace, rows-digest)`` alone, so hot-swapping the meta-learner
   (a :mod:`repro.shard` model broadcast installing a re-pretrained phi
   via :func:`repro.persist.load_pretrained`) served encodes computed
   under the *old* phi.  The key now carries the state's artifact token.
2. ``poll(session_id, advance=True)`` ran a global ``flush()`` that
   re-raised the first error, so one session's bad label batch raised
   into unrelated sessions' polls.  Errors are now attributed to the
   owning session and surfaced only in *its* poll result.
3. ``predict_many``'s all-ones ``&=`` conjunction meant a session with
   no subspaces reported every row interesting.  Empty sessions are
   rejected at ``start_session`` and guarded at predict time.
"""

import copy

import numpy as np
import pytest

from repro.serve import SessionManager


@pytest.fixture()
def manager(serve_lte):
    return SessionManager(serve_lte)


def _perturb_phi(lte, scale=1.5, shift=0.1):
    """Return a deep copy of ``lte`` whose meta-learned weights differ
    (a stand-in for a re-pretrained phi with the same identity)."""
    swapped = copy.deepcopy(lte)
    for state in swapped.states.values():
        if state.trainer is None:
            continue
        sd = state.trainer.state_dict()

        def twist(node):
            if isinstance(node, np.ndarray) and \
                    np.issubdtype(node.dtype, np.floating):
                return node * scale + shift
            if isinstance(node, dict):
                return {k: twist(v) for k, v in node.items()}
            if isinstance(node, list):
                return [twist(v) for v in node]
            return node

        sd["model"] = twist(sd["model"])
        state.trainer.load_state_dict(sd)
    return swapped


class TestEncodeCacheVersioning:
    def test_phi_swap_invalidates_encode_cache(self, serve_lte,
                                               serve_subspaces, tmp_path):
        """Swapping phi through the real broadcast path
        (save_pretrained -> load_pretrained) must yield fresh encodes —
        the stale-cache bug returned the old phi's encodes verbatim."""
        from repro.persist import load_pretrained, save_pretrained

        lte = copy.deepcopy(serve_lte)
        manager = SessionManager(lte)
        subspace = serve_subspaces[0]
        state = lte.states[subspace]
        points = state.to_raw(state.data[:16])

        first = manager._subspace_artifacts(subspace, state, points)
        again = manager._subspace_artifacts(subspace, state, points)
        assert again[2] is first[2]     # warm cache serves the same encode

        save_pretrained(tmp_path / "phi-v2", _perturb_phi(serve_lte))
        load_pretrained(tmp_path / "phi-v2", lte)

        # The reload is a new artifact generation: encodes are
        # recomputed, not served from the stale cache entry.
        swapped = manager._subspace_artifacts(subspace, state, points)
        assert swapped[2] is not first[2]

        # And the fresh computation really reads the *current*
        # artifacts: refresh the scaler in place (widening its span
        # changes every scaled coordinate) and the next generation's
        # encodes change value — the old cache entry would have been
        # numerically wrong.
        state.scaler.max_ = state.scaler.max_ + 1.0
        state.bump_artifacts()
        refreshed = manager._subspace_artifacts(subspace, state, points)
        assert refreshed[1] is not swapped[1]
        assert not np.allclose(refreshed[1], swapped[1])

    def test_load_pretrained_bumps_artifact_tokens(self, serve_lte,
                                                   tmp_path):
        """Even a bit-identical reload is a new artifact generation."""
        from repro.persist import load_pretrained, save_pretrained

        lte = copy.deepcopy(serve_lte)
        save_pretrained(tmp_path / "phi", lte)
        before = {s: st.artifact_token for s, st in lte.states.items()}
        load_pretrained(tmp_path / "phi", lte)
        after = {s: st.artifact_token for s, st in lte.states.items()}
        assert all(after[s] != before[s] for s in before)


class TestPerSessionErrorAttribution:
    def _bad_and_good(self, manager, serve_subspaces, make_oracle):
        oracle = make_oracle(31)
        subspace = serve_subspaces[0]
        sid_bad = manager.open_session(subspaces=[subspace])
        sid_good = manager.open_session(subspaces=[subspace])
        tuples = manager.initial_tuples(sid_bad)[subspace]
        labels = oracle.label_subspace(subspace, tuples)
        manager.submit_labels(sid_bad, subspace, labels)
        manager.submit_labels(sid_good, subspace, labels)

        def boom(labels):
            raise RuntimeError("corrupt session")

        manager.session(sid_bad)._subsessions[subspace] \
            .build_initial_request = boom
        return sid_bad, sid_good, subspace

    def test_poll_never_raises_another_sessions_error(self, manager,
                                                      serve_subspaces,
                                                      make_oracle):
        sid_bad, sid_good, subspace = self._bad_and_good(
            manager, serve_subspaces, make_oracle)
        # The buggy poll ran flush() with raise_errors and blew up here.
        result = manager.poll(sid_good)
        assert result["errors"] == []
        assert result["ready"] == [subspace]

    def test_error_surfaces_in_owning_sessions_poll(self, manager,
                                                    serve_subspaces,
                                                    make_oracle):
        sid_bad, sid_good, subspace = self._bad_and_good(
            manager, serve_subspaces, make_oracle)
        manager.poll(sid_good)                      # flushes everything
        result = manager.poll(sid_bad)
        assert len(result["errors"]) == 1
        entry = result["errors"][0]
        assert entry["subspace"] == list(subspace.names)
        assert "RuntimeError: corrupt session" in entry["error"]
        # Reported errors are cleared, not re-delivered forever.
        assert manager.poll(sid_bad)["errors"] == []

    def test_direct_flush_still_raises(self, manager, serve_subspaces,
                                       make_oracle):
        sid_bad, _, _ = self._bad_and_good(manager, serve_subspaces,
                                           make_oracle)
        with pytest.raises(RuntimeError, match="corrupt session"):
            manager.flush()

    def test_wave_failure_keeps_recorded_errors(self, manager, serve_lte,
                                                serve_subspaces,
                                                make_oracle, monkeypatch):
        """A training crash in a later wave used to discard the
        per-item errors already collected; they are now recorded per
        session at catch time."""
        import repro.serve.manager as manager_module

        sid_bad, sid_good, subspace = self._bad_and_good(
            manager, serve_subspaces, make_oracle)
        # Queue a second batch for the good session so a second wave
        # exists, and make training fail only on that wave.
        oracle = make_oracle(31)
        state = serve_lte.states[subspace]
        extra = state.to_raw(state.data[5:7])
        manager.add_labels(sid_good, subspace, extra,
                           oracle.label_subspace(subspace, extra))

        real = manager_module.run_adapt_requests
        calls = {"n": 0}

        def flaky(requests):
            calls["n"] += 1
            if calls["n"] == 2:
                raise MemoryError("simulated")
            return real(requests)

        monkeypatch.setattr(manager_module, "run_adapt_requests", flaky)
        with pytest.raises(MemoryError):
            manager.flush(raise_errors=False)
        # The bad session's wave-1 error survived the wave-2 crash.
        result = manager.poll(sid_bad, advance=False)
        assert len(result["errors"]) == 1
        assert "corrupt session" in result["errors"][0]["error"]


class TestEmptySessionGuard:
    def test_start_session_rejects_empty_subspaces(self, serve_lte):
        with pytest.raises(ValueError, match="at least one subspace"):
            serve_lte.start_session(subspaces=[])

    def test_manager_rejects_empty_session_list(self, manager):
        with pytest.raises(ValueError, match="at least one subspace"):
            manager.open_session(subspaces=[])

    def test_predict_many_guards_empty_session(self, manager,
                                               serve_subspaces,
                                               make_oracle, eval_rows):
        """A session stripped of subspaces must raise, not report every
        row interesting through the all-ones conjunction."""
        oracle = make_oracle(7)
        sid = manager.open_session(subspaces=[serve_subspaces[0]])
        tuples = manager.initial_tuples(sid)[serve_subspaces[0]]
        manager.submit_labels(sid, serve_subspaces[0],
                              oracle.label_subspace(serve_subspaces[0],
                                                    tuples))
        manager.flush()
        # Simulate the corrupted state the bug silently accepted.
        manager.session(sid)._subsessions.clear()
        with pytest.raises(RuntimeError, match="no subspaces"):
            manager.predict_many([sid], eval_rows)
        with pytest.raises(RuntimeError, match="no subspaces"):
            manager.predict(sid, eval_rows)

    def test_predict_many_store_guards_empty_session(self, manager,
                                                     serve_lte,
                                                     serve_subspaces,
                                                     make_oracle):
        from repro.store import ChunkStore

        oracle = make_oracle(7)
        sid = manager.open_session(subspaces=[serve_subspaces[0]])
        tuples = manager.initial_tuples(sid)[serve_subspaces[0]]
        manager.submit_labels(sid, serve_subspaces[0],
                              oracle.label_subspace(serve_subspaces[0],
                                                    tuples))
        manager.flush()
        store = ChunkStore.from_table(serve_lte.table, chunk_rows=512)
        manager.session(sid)._subsessions.clear()
        with pytest.raises(RuntimeError, match="no subspaces"):
            manager.predict_many_store([sid], store)
