"""Tests for the benchmark harness infrastructure."""

import numpy as np
import pytest

from repro.bench import (baseline_oracle_pairs, budget_to_reach, get_scale,
                         online_times, print_matrix, print_series)
from repro.bench.config import BenchScale
from repro.data.subspaces import Subspace
from repro.explore import ConjunctiveOracle
from repro.geometry import BoxRegion


class TestScale:
    def test_presets_exist(self):
        for name in ("quick", "medium", "paper"):
            scale = get_scale(name)
            assert isinstance(scale, BenchScale)
            assert scale.name == name

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert get_scale().name == "medium"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("gigantic")

    def test_paper_scale_matches_paper_parameters(self):
        paper = get_scale("paper")
        assert paper.n_tasks == 5000
        assert paper.dataset_rows == 100_000


class TestBudgetToReach:
    def test_picks_smallest_sufficient(self):
        table = {30: 0.5, 50: 0.8, 40: 0.76}
        assert budget_to_reach(table, 0.75) == 40

    def test_none_when_unreachable(self):
        assert budget_to_reach({30: 0.1}, 0.75) is None


class TestPrinting:
    def test_print_series_smoke(self, capsys):
        print_series("Fig X", "B", [30, 40],
                     {"meta": [0.5, 0.6], "dsm": [0.4, None]})
        out = capsys.readouterr().out
        assert "Fig X" in out and "0.600" in out and "-" in out

    def test_print_matrix_smoke(self, capsys):
        print_matrix("Table II", ["Meta*"], ["M1", "M2"], [[0.8, 0.7]])
        out = capsys.readouterr().out
        assert "Table II" in out and "0.800" in out


class TestBaselineOraclePairs:
    def test_projection_reconstructs_full_rows(self):
        s_a = Subspace(["a", "b"], [0, 1])
        s_c = Subspace(["c"], [3])
        oracle = ConjunctiveOracle({
            s_a: BoxRegion([0, 0], [1, 1]),
            s_c: BoxRegion([0], [1]),
        })
        pairs = baseline_oracle_pairs([oracle], [s_a, s_c])
        assert len(pairs) == 1
        _, project = pairs[0]
        user_rows = np.array([[0.5, 0.5, 0.7]])  # columns (0, 1, 3)
        full = project(user_rows)
        assert full.shape == (1, 4)
        assert full[0, 0] == 0.5 and full[0, 1] == 0.5 and full[0, 3] == 0.7

    def test_oracle_evaluates_projected_rows(self):
        s_a = Subspace(["a", "b"], [0, 1])
        oracle = ConjunctiveOracle({s_a: BoxRegion([0, 0], [1, 1])})
        pairs = baseline_oracle_pairs([oracle], [s_a])
        orc, project = pairs[0]
        assert orc.ground_truth(project(np.array([[0.5, 0.5]])))[0] == 1
        assert orc.ground_truth(project(np.array([[5.0, 0.5]])))[0] == 0


def test_online_times_positive():
    assert online_times(lambda: sum(range(1000)), repeats=2) > 0
