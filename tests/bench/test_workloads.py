"""Tests for bench workload builders (uses tiny scales)."""

import numpy as np
import pytest

from repro.bench.config import BenchScale
from repro.bench.workloads import (build_lte, clear_caches, convex_oracles,
                                   eval_rows_for, get_table, make_config,
                                   mode_oracles)
from repro.core.uis import UISMode

TINY = BenchScale(name="quick", dataset_rows=2500, n_tasks=4, epochs=1,
                  local_steps=2, n_test_uirs=2, eval_rows=300, pool_size=100,
                  basic_steps=5)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestTableCache:
    def test_same_object_returned(self):
        a = get_table("sdss", TINY)
        b = get_table("sdss", TINY)
        assert a is b

    def test_row_count_follows_scale(self):
        assert get_table("car", TINY).n_rows == 2500


class TestBuildLte:
    def test_caching_by_configuration(self):
        a = build_lte("sdss", budget=20, scale=TINY, train=False)
        b = build_lte("sdss", budget=20, scale=TINY, train=False)
        c = build_lte("sdss", budget=25, scale=TINY, train=False)
        assert a is b
        assert a is not c

    def test_untrained_build(self):
        lte = build_lte("sdss", budget=20, scale=TINY, train=False)
        assert all(s.trainer is None for s in lte.states.values())

    def test_config_scale_mapping(self):
        cfg = make_config(budget=20, scale=TINY)
        assert cfg.n_tasks == 4
        assert cfg.meta.epochs == 1
        assert cfg.basic_steps == 5


class TestOracles:
    def test_convex_oracle_structure(self):
        lte = build_lte("sdss", budget=20, scale=TINY, train=False)
        subs = list(lte.states)[:2]
        oracles = convex_oracles(lte, subs, n_uirs=3, seed=0)
        assert len(oracles) == 3
        for oracle in oracles:
            assert set(oracle.subspace_regions) == set(subs)
            for region in oracle.subspace_regions.values():
                assert region.n_parts == 1  # convex: alpha = 1

    def test_mode_oracle_alpha(self):
        lte = build_lte("sdss", budget=20, scale=TINY, train=False)
        subs = list(lte.states)[:1]
        oracles = mode_oracles(lte, subs, UISMode(3, 6), n_uirs=2, seed=0)
        for oracle in oracles:
            for region in oracle.subspace_regions.values():
                assert region.n_parts == 3

    def test_oracles_deterministic_per_seed(self):
        lte = build_lte("sdss", budget=20, scale=TINY, train=False)
        subs = list(lte.states)[:1]
        rows = lte.table.sample_rows(200, seed=0)
        a = convex_oracles(lte, subs, n_uirs=1, seed=5)[0]
        b = convex_oracles(lte, subs, n_uirs=1, seed=5)[0]
        assert np.array_equal(a.ground_truth(rows), b.ground_truth(rows))

    def test_eval_rows_shape(self):
        lte = build_lte("sdss", budget=20, scale=TINY, train=False)
        rows = eval_rows_for(lte, TINY)
        assert rows.shape == (300, 8)
